"""Common machinery for the scaling-technique performance engines.

Each engine implements the :class:`~repro.cpu.simulator.PerfEngine` protocol
for one technique from §2/§3: shared state (atomics or locks), sharding (RSS
or RSS++), or SCR.  The engines translate a technique's mechanism into
per-packet service time and counter charges using the Table 4 cost
parameters and the contention constants in ``repro.cpu.costmodel``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ..cpu.cache import L2Model
from ..cpu.costmodel import (
    DEFAULT_CONTENTION,
    TABLE4_PARAMS,
    ContentionParams,
    CostParams,
)
from ..cpu.counters import CoreCounters, SystemCounters
from ..cpu.simulator import PerfPacket
from ..hostprof.clock import NULL_HOSTPROF, PhaseClock
from ..obs.spans import NULL_SPANS, SpanEmitter
from ..programs.base import PacketProgram
from ..telemetry.events import NULL_TRACER, EventTracer

__all__ = ["BaseEngine", "hash_for_program"]


def hash_for_program(program: PacketProgram, pp: PerfPacket) -> int:
    """The RSS hash a NIC would use to shard this program correctly.

    Table 1's "RSS hash fields" column: IP-pair programs hash L3 only;
    5-tuple programs hash L4; bidirectional programs need the symmetric key
    so both directions land on one core [70].
    """
    if program.bidirectional:
        return pp.hash_sym
    if program.rss_fields == "src & dst IP":
        return pp.hash_l3
    return pp.hash_l4


class BaseEngine(ABC):
    """Shared state for the per-technique engines."""

    name = "base"

    def __init__(
        self,
        program: PacketProgram,
        num_cores: int,
        costs: Optional[CostParams] = None,
        contention: ContentionParams = DEFAULT_CONTENTION,
        tracer: EventTracer = NULL_TRACER,
        spans: SpanEmitter = NULL_SPANS,
        hostprof: PhaseClock = NULL_HOSTPROF,
    ) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.program = program
        self.num_cores = num_cores
        #: telemetry event sink; the default disabled tracer is free.
        self.tracer = tracer
        #: causal span emitter for sampled packets (disabled by default).
        self.spans = spans
        #: host wall-clock phase sink (disabled by default; never feeds
        #: simulated time — see docs/PROFILING.md).
        self.hostprof = hostprof
        if costs is None:
            try:
                costs = TABLE4_PARAMS[program.name]
            except KeyError:
                raise KeyError(
                    f"no Table 4 cost parameters for program {program.name!r}; "
                    "pass costs= explicitly"
                ) from None
        self.costs = costs
        self.contention = contention
        self.counters = SystemCounters()
        self.l2 = L2Model(num_cores, spill_ns=contention.l2_spill_ns)
        self._build_counters()

    def _build_counters(self) -> None:
        self.counters.cores = [CoreCounters(core_id=i) for i in range(self.num_cores)]

    def reset(self) -> None:
        """Clear run state; subclasses extend."""
        self._build_counters()
        self.l2.reset()

    # Default protocol pieces; engines override what differs. ------------------

    def wire_len(self, pp: PerfPacket) -> int:
        return pp.wire_len

    def pre_enqueue(self, pp: PerfPacket, core: int) -> bool:
        return True

    def note_fault_drop(self, core: int, pp: PerfPacket) -> None:
        """The simulator fault-dropped a packet already steered to ``core``.

        Techniques with per-core replicas (SCR) override this to charge
        gap recovery on the core's next service; for shared-state and
        sharded techniques a lost packet is just a lost packet.
        """

    @abstractmethod
    def steer(self, pp: PerfPacket) -> int:
        ...

    @abstractmethod
    def service_ns(self, core: int, pp: PerfPacket, start_ns: float) -> float:
        ...
