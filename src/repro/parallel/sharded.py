"""Sharded (shared-nothing) engines: classic RSS and RSS++ [34].

RSS hashes each packet's flow fields through the NIC's indirection table,
pinning each flow shard to a fixed core — no sharing, no contention, but
throughput is gated by the most loaded core (§2.2): an elephant flow can
never exceed one core's rate.

RSS++ periodically rewrites indirection-table entries to migrate shards
from overloaded to underloaded cores, minimizing imbalance subject to a
migration budget (its optimization trades imbalance against cross-core
state transfers).  Migration granularity is a whole shard, and every
migrated flow's state must bounce to the new core — both effects the paper
calls out as RSS++'s limits (§4.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

import numpy as np

from ..cpu.simulator import PerfPacket
from ..nic.rss import RssIndirection
from .base import BaseEngine, hash_column_for_program, hash_for_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.simulator import PerfTrace

__all__ = ["ShardedRssEngine", "RssPlusPlusEngine"]


class ShardedRssEngine(BaseEngine):
    """Classic RSS sharding: static hash → indirection table → core."""

    name = "rss"

    def __init__(self, *args, indirection_size: int = 128, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.indirection = RssIndirection(self.num_cores, table_size=indirection_size)

    def reset(self) -> None:
        super().reset()
        self.indirection = RssIndirection(
            self.num_cores, table_size=self.indirection.table_size
        )

    def steer(self, pp: PerfPacket) -> int:
        return self.indirection.queue_of(hash_for_program(self.program, pp))

    def service_ns(self, core: int, pp: PerfPacket, start_ns: float) -> float:
        c = self.costs
        counters = self.counters.cores[core]
        if not pp.valid:
            counters.charge_packet(dispatch_ns=c.d, compute_ns=c.c1, state_accesses=0)
            return c.d + c.c1
        miss_frac, spill = self.l2.access(core, pp.key)
        counters.charge_packet(
            dispatch_ns=c.d,
            compute_ns=c.c1 + spill,
            state_accesses=1,
            l2_misses=miss_frac,
            program_ns=c.c1 + spill,
        )
        return c.d + c.c1 + spill

    # -- columnar hot-path hooks (docs/HOTPATH.md) --------------------------------

    def columnar_eligible(self) -> bool:
        """Static hash → static table: steering and service are pure
        functions of the packet row, so batched replay is exact."""
        return True

    def steer_batch(self, trace: "PerfTrace") -> np.ndarray:
        hashes = hash_column_for_program(self.program, trace)
        size = self.indirection.table_size
        if size & (size - 1) == 0:
            shards = hashes & np.uint32(size - 1)
        else:
            shards = hashes % np.uint32(size)
        table = np.asarray(self.indirection.table, dtype=np.int64)
        return table[shards]

    def service_rows(
        self,
        trace: "PerfTrace",
        rows: np.ndarray,
        miss_frac: np.ndarray,
        spill_ns: np.ndarray,
        history_items: np.ndarray,
    ) -> np.ndarray:
        c = self.costs
        return np.where(trace.valid[rows], (c.d + c.c1) + spill_ns, c.d + c.c1)

    def service_batch(
        self,
        trace: "PerfTrace",
        rows: np.ndarray,
        cores: np.ndarray,
        start_ns: np.ndarray,
        steered_before: np.ndarray,
    ) -> np.ndarray:
        from ..cpu.columnar import l2_spill_rows

        c = self.costs
        miss_frac, spill = l2_spill_rows(
            self.l2, trace, rows, cores, self.num_cores, commit=True)
        services = self.service_rows(trace, rows, miss_frac, spill, steered_before)
        valid = trace.valid[rows]
        compute_col = np.where(valid, c.c1 + spill, c.c1)
        dispatch_col = np.full(len(rows), c.d, dtype=np.float64)
        accesses = valid.astype(np.int64)
        for core in range(self.num_cores):
            sel = np.flatnonzero(cores == core)
            if len(sel) == 0:
                continue
            self.counters.cores[core].charge_batch(
                dispatch_ns=dispatch_col[sel],
                compute_ns=compute_col[sel],
                state_accesses=accesses[sel],
                l2_misses=miss_frac[sel],
                program_ns=compute_col[sel],
            )
        return services


class RssPlusPlusEngine(ShardedRssEngine):
    """RSS++ load-aware shard migration on top of RSS sharding."""

    name = "rss++"

    def __init__(
        self,
        *args,
        rebalance_every: int = 2000,
        imbalance_threshold: float = 0.10,
        max_migrations: int = 8,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.rebalance_every = rebalance_every
        self.imbalance_threshold = imbalance_threshold
        self.max_migrations = max_migrations
        self._shard_load: List[int] = [0] * self.indirection.table_size
        self._since_rebalance = 0
        #: migration generation per shard; a key whose shard migrated pays
        #: one state-line transfer the first time it is touched afterwards.
        self._shard_gen: List[int] = [0] * self.indirection.table_size
        self._key_gen: Dict[object, int] = {}
        self.migrations = 0

    def reset(self) -> None:
        super().reset()
        self._shard_load = [0] * self.indirection.table_size
        self._shard_gen = [0] * self.indirection.table_size
        self._key_gen = {}
        self._since_rebalance = 0
        self.migrations = 0

    def columnar_eligible(self) -> bool:
        """RSS++ mutates its steering table mid-run (shard migrations) and
        surcharges first-touch-after-migration services — per-packet order
        matters, so it stays on the scalar event loop."""
        return False

    def steer(self, pp: PerfPacket) -> int:
        shard = self.indirection.shard_of(hash_for_program(self.program, pp))
        self._shard_load[shard] += 1
        self._since_rebalance += 1
        if self._since_rebalance >= self.rebalance_every:
            self._rebalance()
        return self.indirection.table[shard]

    def _rebalance(self) -> None:
        """Greedy version of the RSS++ optimization: move the heaviest shards
        off the most loaded core until imbalance drops below the threshold or
        the migration budget is spent."""
        self._since_rebalance = 0
        loads = [0] * self.num_cores
        for shard, load in enumerate(self._shard_load):
            loads[self.indirection.table[shard]] += load
        total = sum(loads)
        if total == 0:
            return
        target = total / self.num_cores
        for _ in range(self.max_migrations):
            hot = max(range(self.num_cores), key=lambda q: loads[q])
            cold = min(range(self.num_cores), key=lambda q: loads[q])
            if loads[hot] - loads[cold] <= self.imbalance_threshold * total:
                break
            candidates = self.indirection.shards_on(hot)
            if len(candidates) <= 1:
                break
            # Largest shard that fits under the target without overshooting
            # the cold core past the hot one; fall back to the smallest.
            gap = (loads[hot] - loads[cold]) / 2
            movable = [s for s in candidates if 0 < self._shard_load[s] <= gap]
            if not movable:
                break
            shard = max(movable, key=lambda s: self._shard_load[s])
            self.indirection.migrate(shard, cold)
            self._shard_gen[shard] += 1
            loads[hot] -= self._shard_load[shard]
            loads[cold] += self._shard_load[shard]
            self.migrations += 1
        # Exponential decay so the window tracks recent load (RSS++ uses a
        # sliding estimate of shard load).
        self._shard_load = [load // 2 for load in self._shard_load]

    def service_ns(self, core: int, pp: PerfPacket, start_ns: float) -> float:
        base = super().service_ns(core, pp, start_ns)
        if not pp.valid:
            return base
        shard = self.indirection.shard_of(hash_for_program(self.program, pp))
        gen = self._shard_gen[shard]
        if gen and self._key_gen.get(pp.key, 0) != gen:
            # First touch after this shard migrated: the flow's state line
            # must move from the old core.
            self._key_gen[pp.key] = gen
            transfer = self.contention.line_transfer_ns
            counters = self.counters.cores[core]
            counters.transfer_ns += transfer
            counters.l2_misses += 1
            return base + transfer
        return base
