"""Relaxed SCR: pruned single-delta history for commutative state.

When every state field a program writes is *commutative* (pure
accumulate-add / OR / max, declared via ``SCR_COMMUTATIVE_FIELDS`` and
machine-checked by scrlint rule SCR007), replicas converge under any
interleaving — the order in which deltas are applied no longer matters.
The relaxed-consistency line of work ("Relaxing constraints in stateful
network data plane design") exploits this: instead of piggybacking the
last ``k-1`` per-packet history items, the sequencer folds them into a
**single merged delta**.  Two costs shrink at once:

* **fast-forward**: each packet applies at most one merged item, so the
  Appendix A service time drops from ``t + (k-1)·c2`` to
  ``t + min(k-1, 1)·c2`` — per-core throughput stops degrading with k;
* **bytes**: the wire prefix carries one history slot instead of ``k-1``,
  so the NIC-bandwidth ceiling of Figure 10a recedes.

For a program with *any* non-commutative written field the relaxation is
unsound, and this engine degenerates to plain SCR (full history, full
cost) rather than silently corrupting state.  Loss recovery is modeled
identically to strict SCR in both modes — a conservative choice, since a
merged delta could also cover wider gaps.
"""

from __future__ import annotations

from ..core.packet_format import ScrPacketCodec
from ..programs.base import SCR_COMMUTATIVE_FIELDS_ATTR
from .scr_technique import ScrEngine

__all__ = ["RelaxedScrEngine"]


class RelaxedScrEngine(ScrEngine):
    """SCR with the history pruned to one merged delta when state commutes."""

    name = "relaxed_scr"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        fields = getattr(self.program, SCR_COMMUTATIVE_FIELDS_ATTR, ())
        #: True when the program declares all written state commutative and
        #: the single-delta pruning is sound.
        self.relaxed = bool(fields)
        if self.relaxed:
            # One wire slot carries the merged delta.  ``self.num_slots``
            # keeps the *logical* coverage window (>= num_cores) used by the
            # gap-recovery math; only the frame layout shrinks.
            self.codec = ScrPacketCodec(
                meta_size=self.program.metadata_size,
                num_slots=1,
                dummy_eth=self.codec.dummy_eth,
            )

    def _history_items(self) -> int:
        h = super()._history_items()
        if self.relaxed:
            return min(h, 1)
        return h

    def history_cap(self) -> int:
        """One merged delta when relaxed — the columnar hot path clamps
        the batched history depth exactly like :meth:`_history_items`."""
        cap = super().history_cap()
        if self.relaxed:
            return min(cap, 1)
        return cap
