"""Technique registry: build any evaluated engine by name."""

from __future__ import annotations

from typing import List

from ..programs.base import PacketProgram
from .base import BaseEngine
from .hybrid import HybridEngine
from .relaxed_scr import RelaxedScrEngine
from .scr_technique import ScrEngine
from .sharded import RssPlusPlusEngine, ShardedRssEngine
from .shared import make_shared_engine

__all__ = ["TECHNIQUES", "COLUMNAR_TECHNIQUES", "make_engine", "technique_names"]

#: The four techniques compared throughout §4.2, plus relaxed SCR — the
#: pruned-history variant for commutative state the advisor recommends
#: (docs/ADVISOR.md) — plus the elephant/mice placement hybrid
#: (repro.placement, docs/MULTITENANT.md).
TECHNIQUES = ("scr", "relaxed_scr", "shared", "rss", "rss++", "hybrid")

#: Techniques whose engines can opt into the columnar hot path
#: (``columnar_eligible`` may still say no at runtime, e.g. SCR with loss
#: injection): scr / relaxed_scr (pure round-robin row math) and rss
#: (static indirection-table gather).  ``shared`` engines serialize on
#: time-dependent contention and ``rss++`` mutates its steering table
#: mid-run, so both always run the scalar event loop (docs/HOTPATH.md).
COLUMNAR_TECHNIQUES = ("scr", "relaxed_scr", "rss")


def make_engine(
    technique: str, program: PacketProgram, num_cores: int, **kwargs
) -> BaseEngine:
    """Instantiate a scaling-technique engine.

    ``shared`` picks atomics vs locks by the program's Table 1 row, exactly
    as the evaluation does.
    """
    if technique == "scr":
        return ScrEngine(program, num_cores, **kwargs)
    if technique == "relaxed_scr":
        return RelaxedScrEngine(program, num_cores, **kwargs)
    if technique == "shared":
        return make_shared_engine(program, num_cores, **kwargs)
    if technique == "rss":
        return ShardedRssEngine(program, num_cores, **kwargs)
    if technique == "rss++":
        return RssPlusPlusEngine(program, num_cores, **kwargs)
    if technique == "hybrid":
        return HybridEngine(program, num_cores, **kwargs)
    raise ValueError(
        f"unknown technique {technique!r}; known: {', '.join(technique_names())}"
    )


def technique_names() -> List[str]:
    return list(TECHNIQUES)
