"""Shared-state engines: one state map, packets sprayed across all cores.

The §2.2 "shared state parallelism" baseline: packets are sprayed evenly
(round-robin), and every core reads/writes the same state entries, guarded
by either hardware atomics (counter programs) or eBPF spinlocks [10]
(everything else) — the split in Table 1's "Atomic HW vs. Locks" column.

The mechanisms that make this collapse under skew (§4.2):

* each update of a key is a serialization point — at most ``1/hold`` updates
  per second regardless of core count;
* the state cache line bounces between cores on nearly every access of a
  hot flow, stalling the accessor for an LLC round trip;
* under lock contention the hold itself inflates with the number of
  spinning cores stealing the lock line.
"""

from __future__ import annotations

from ..cpu.cache import BounceTracker
from ..cpu.locks import SerializationTable
from ..cpu.simulator import PerfPacket
from ..telemetry.events import EV_LOCK_WAIT
from .base import BaseEngine

__all__ = ["SharedAtomicEngine", "SharedLockEngine", "make_shared_engine"]


#: the serialization key standing in for program-global state (a NAT's
#: port pool): one entry contended by every packet that touches it.
_GLOBAL_KEY = object()


class _SharedBase(BaseEngine):
    """Round-robin spraying + shared-map bookkeeping."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rr = 0
        self.serialization = SerializationTable()
        self.bounces = BounceTracker(transfer_ns=self.contention.line_transfer_ns)

    def reset(self) -> None:
        super().reset()
        self._rr = 0
        self.serialization.reset()
        self.bounces.reset()

    def steer(self, pp: PerfPacket) -> int:
        core = self._rr
        self._rr = (self._rr + 1) % self.num_cores
        return core

    def _global_update_ns(self, core: int, pp: PerfPacket, start_ns: float) -> float:
        """Serialize on the program's global entry when this packet updates
        it (§2.2: e.g. a NAT's free-port list).  Returns extra stall ns."""
        if not pp.touches_global:
            return 0.0
        bounced, read_stall = self.bounces.access(core, _GLOBAL_KEY)
        hold = self.contention.lock_hold_ns(
            self.costs.c1 * 0.5, self.num_cores if bounced else 1
        )
        wait = self.serialization.acquire(_GLOBAL_KEY, start_ns, hold)
        if wait > 0 and self.tracer.enabled:
            self.tracer.emit(EV_LOCK_WAIT, ts_ns=start_ns, core=core,
                             dur_ns=wait, lock="global")
        counters = self.counters.cores[core]
        counters.wait_ns += wait
        counters.transfer_ns += read_stall
        counters.l2_misses += 1.0 if bounced else 0.0
        counters.l2_accesses += 1
        return read_stall + wait + hold


class SharedAtomicEngine(_SharedBase):
    """Shared state updated with hardware atomic RMW instructions.

    Only valid for programs whose update is a single fetch-modify-write
    (Table 1); constructing it for a lock-requiring program raises.
    """

    name = "shared-atomic"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.program.needs_locks:
            raise ValueError(
                f"{self.program.name} updates are too complex for hardware "
                "atomics (Table 1); use SharedLockEngine"
            )

    def service_ns(self, core: int, pp: PerfPacket, start_ns: float) -> float:
        c = self.costs
        counters = self.counters.cores[core]
        if not pp.valid:
            counters.charge_packet(dispatch_ns=c.d, compute_ns=c.c1, state_accesses=0)
            return c.d + c.c1
        bounced, read_stall = self.bounces.access(core, pp.key)
        # A bounced line stalls twice: the initial load misses (the line is
        # dirty in another core's cache), and the RMW then needs the line
        # exclusively for a full cross-core transfer.  Uncontended updates
        # pay only the RMW instruction.
        hold = self.contention.atomic_hold_ns() if bounced else self.contention.atomic_ns
        # The RMW happens after dispatch + compute + the read stall.
        wait = self.serialization.acquire(pp.key, start_ns + c.d + c.c1 + read_stall, hold)
        if wait > 0 and self.tracer.enabled:
            self.tracer.emit(EV_LOCK_WAIT, ts_ns=start_ns, core=core,
                             dur_ns=wait, lock="atomic")
        miss_frac, spill = self.l2.access(core, pp.key)
        misses = miss_frac + (1.0 if bounced else 0.0)
        total = c.d + c.c1 + read_stall + wait + hold + spill
        counters.charge_packet(
            dispatch_ns=c.d,
            compute_ns=c.c1 + spill,
            wait_ns=wait,
            transfer_ns=read_stall + (hold if bounced else 0.0),
            state_accesses=1,
            l2_misses=misses,
            program_ns=c.c1 + read_stall + wait + hold + spill,
        )
        total += self._global_update_ns(core, pp, start_ns + total)
        return total


class SharedLockEngine(_SharedBase):
    """Shared state guarded by per-entry spinlocks (eBPF bpf_spin_lock)."""

    name = "shared-lock"

    def service_ns(self, core: int, pp: PerfPacket, start_ns: float) -> float:
        c = self.costs
        counters = self.counters.cores[core]
        if not pp.valid:
            counters.charge_packet(dispatch_ns=c.d, compute_ns=c.c1, state_accesses=0)
            return c.d + c.c1
        bounced, _ = self.bounces.access(core, pp.key)
        contenders = self.num_cores if bounced else 1
        hold = self.contention.lock_hold_ns(c.c1, contenders)
        # The lock is taken after dispatch; the update (c1) runs under it.
        wait = self.serialization.acquire(pp.key, start_ns + c.d, hold)
        if wait > 0 and self.tracer.enabled:
            self.tracer.emit(EV_LOCK_WAIT, ts_ns=start_ns, core=core,
                             dur_ns=wait, lock="spinlock")
        miss_frac, spill = self.l2.access(core, pp.key)
        misses = miss_frac + (1.0 if bounced else 0.0)
        lock_overhead = hold - c.c1  # lock instructions + line handoffs
        total = c.d + wait + hold + spill
        counters.charge_packet(
            dispatch_ns=c.d,
            compute_ns=c.c1 + spill,
            wait_ns=wait,
            transfer_ns=lock_overhead,
            state_accesses=1,
            l2_misses=misses,
            program_ns=wait + hold + spill,
        )
        total += self._global_update_ns(core, pp, start_ns + total)
        return total


def make_shared_engine(program, num_cores, **kwargs) -> _SharedBase:
    """The shared baseline as evaluated: atomics when possible, else locks."""
    if program.needs_locks:
        return SharedLockEngine(program, num_cores, **kwargs)
    return SharedAtomicEngine(program, num_cores, **kwargs)
