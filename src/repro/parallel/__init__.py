"""Scaling-technique performance engines: shared, sharded, RSS++, SCR."""

from .base import BaseEngine, hash_for_program
from .functional import (
    FunctionalRunResult,
    ShardedFunctionalEngine,
    SharedFunctionalEngine,
)
from .hybrid import HybridEngine
from .registry import COLUMNAR_TECHNIQUES, TECHNIQUES, make_engine, technique_names
from .relaxed_scr import RelaxedScrEngine
from .scr_technique import ScrEngine
from .sharded import RssPlusPlusEngine, ShardedRssEngine
from .shared import SharedAtomicEngine, SharedLockEngine, make_shared_engine

__all__ = [
    "BaseEngine",
    "hash_for_program",
    "FunctionalRunResult",
    "SharedFunctionalEngine",
    "ShardedFunctionalEngine",
    "TECHNIQUES",
    "COLUMNAR_TECHNIQUES",
    "make_engine",
    "technique_names",
    "ScrEngine",
    "RelaxedScrEngine",
    "HybridEngine",
    "RssPlusPlusEngine",
    "ShardedRssEngine",
    "SharedAtomicEngine",
    "SharedLockEngine",
    "make_shared_engine",
]
