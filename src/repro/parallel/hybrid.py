"""Hybrid placement engine: SCR for elephants, RSS sharding for mice.

The paper's techniques are all-or-nothing: pure SCR replicates *every*
flow to every core (paying ``(k-1)·c2`` fast-forward on every packet),
pure RSS pins every flow to one core (capping any elephant at a single
core's rate).  With millions of concurrent flows and Zipf-skewed sizes,
neither is right: only a handful of flows are hot enough for replication
to pay for itself, and everyone else is cheapest left sharded.

:class:`HybridEngine` routes per flow, online:

* an :class:`~repro.placement.ElephantClassifier` watches the stream and
  promotes flows above the (hysteretic) elephant threshold;
* **promoted** flows ride the SCR path — round-robin spray over all
  cores, history fast-forward at the elephant stream's own depth;
* **everyone else** rides RSS sharding through an indirection table
  keyed by the placement layer's seeded FNV over the flow key — the same
  hash family that picks the flow's state shard, so a mouse's packets
  and its state entry stay co-located — with flow state resident in a
  tenant-namespaced :class:`~repro.state.ShardedStateMap` under
  per-tenant quotas (quota exhaustion degrades that tenant to stateless
  forwarding, never drops the packet, and is recorded as a per-tenant
  drop cause);
* every placement change charges its **migration protocol** to the
  packet that triggered it — promotion replicates the flow's state entry
  into all ``k`` replicas (drain-or-replicate handoff), demotion drains
  one replica entry back to the owning shard — so MLFFR numbers include
  the cost of deciding, not just the steady state.

The engine is deliberately scalar-only (``columnar_eligible`` stays
False): steering depends on classifier state that mutates per packet, so
it takes the simulator's scalar event loop, where its decisions are a
pure function of (seed, packet order) — ``--jobs N`` stays bit-identical.
See docs/MULTITENANT.md for the model and the ``multitenant`` suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.packet_format import ScrPacketCodec
from ..cpu.simulator import PerfPacket
from ..nic.rss import RssIndirection
from ..placement import ElephantClassifier, PlacementSpec, tenant_of
from ..placement.classifier import PROMOTE
from ..state.cuckoo import _fnv1a, _key_bytes
from ..state.sharded import ShardedStateMap
from ..telemetry.events import EV_HISTORY_DEPTH, EV_SPRAY
from .base import BaseEngine, hash_for_program

__all__ = ["HybridEngine"]


class HybridEngine(BaseEngine):
    """Per-flow SCR/RSS placement with modeled migration costs."""

    name = "hybrid"

    def __init__(
        self,
        *args,
        placement: Optional[PlacementSpec] = None,
        indirection_size: int = 128,
        state_shards: int = 8,
        state_capacity: int = 1 << 16,
        count_wire_overhead: bool = False,
        **kwargs,
    ) -> None:
        """``placement`` configures the classifier, tenancy, and quotas
        (default: a single-tenant :class:`PlacementSpec`).  The scenario
        layer injects it from ``Scenario.placement``, like tracers.

        ``count_wire_overhead`` mirrors :class:`ScrEngine`: when True,
        *promoted* flows' frames carry the sequencer prefix on the wire;
        the Figure 6/7-style in-frame methodology (the suites' default)
        keeps it False.
        """
        super().__init__(*args, **kwargs)
        self.placement = placement if placement is not None else PlacementSpec()
        self.classifier = ElephantClassifier(self.placement)
        self.indirection = RssIndirection(
            self.num_cores, table_size=indirection_size
        )
        self.state_shards = state_shards
        self.state_capacity = state_capacity
        self.mice_state = ShardedStateMap(
            num_shards=state_shards,
            capacity=state_capacity,
            tenant_quota=self.placement.tenant_quota,
            seed=self.placement.seed,
        )
        self.codec = ScrPacketCodec(
            meta_size=self.program.metadata_size,
            num_slots=self.num_cores,
        )
        self.count_wire_overhead = count_wire_overhead
        #: elephant stream round-robin cursor and sequence counter (the
        #: history depth is the *elephant* stream's, not the whole trace's:
        #: only promoted packets are sprayed and fast-forwarded).
        self._rr = 0
        self._eseq = 0
        #: per-packet routing decision, recorded at steer time so service
        #: charges match the placement the packet was actually steered
        #: under (placement may move on between steer and service).
        self._route: Dict[int, Tuple[bool, int, bool]] = {}
        #: per-packet migration charge (promotions/demotions this packet
        #: triggered), folded into its service time.
        self._migration_ns: Dict[int, float] = {}
        #: flow key -> hashed bytes memo for the mice steering hash.
        self._flow_bytes: Dict[object, bytes] = {}
        self.elephant_packets = 0
        self.mice_packets = 0
        self.stateless_packets = 0
        self.migrations = 0
        self.migration_ns_total = 0.0

    def reset(self) -> None:
        super().reset()
        self.classifier.reset()
        self.indirection = RssIndirection(
            self.num_cores, table_size=self.indirection.table_size
        )
        self.mice_state = ShardedStateMap(
            num_shards=self.state_shards,
            capacity=self.state_capacity,
            tenant_quota=self.placement.tenant_quota,
            seed=self.placement.seed,
        )
        self._rr = 0
        self._eseq = 0
        self._route = {}
        self._migration_ns = {}
        self._flow_bytes = {}
        self.elephant_packets = 0
        self.mice_packets = 0
        self.stateless_packets = 0
        self.migrations = 0
        self.migration_ns_total = 0.0

    # -- protocol -----------------------------------------------------------

    def wire_len(self, pp: PerfPacket) -> int:
        """Promoted flows' frames carry the sequencer prefix (when the
        wire methodology counts it).  Read-only: the simulator calls this
        before ``steer``, so a packet that *causes* a promotion is framed
        under its pre-promotion placement — the sequencer can only tag
        what it already knows."""
        if self.count_wire_overhead and pp.valid and (
            self.classifier.is_promoted(pp.key)
        ):
            return pp.wire_len + self.codec.overhead_bytes
        return pp.wire_len

    def _steer_rss(self, pp: PerfPacket) -> int:
        """Mice steering: the indirection table keyed by the placement
        layer's seeded FNV over the flow key (symmetric by construction —
        both directions share the state key), so a flow's packets land
        with its state shard.  Stateless/invalid packets fall back to the
        program's NIC hash."""
        if not pp.valid:
            return self.indirection.queue_of(hash_for_program(self.program, pp))
        data = self._flow_bytes.get(pp.key)
        if data is None:
            data = _key_bytes(pp.key)
            self._flow_bytes[pp.key] = data
        return self.indirection.queue_of(_fnv1a(data, self.placement.seed))

    def steer(self, pp: PerfPacket) -> int:
        if not pp.valid:
            # Stateless packets never touch the classifier; plain RSS.
            self._route[pp.index] = (False, 0, True)
            return self._steer_rss(pp)
        promoted, events = self.classifier.observe(pp.key)
        migration_ns = 0.0
        for event in events:
            self.migrations += 1
            if event.kind == PROMOTE:
                # Drain-or-replicate handoff: the flow's entry leaves its
                # shard and is installed into all k per-core replicas.
                migration_ns += self.num_cores * self.contention.line_transfer_ns
                tenant = tenant_of(
                    event.key, self.placement.num_tenants, self.placement.seed
                )
                self.mice_state.delete(event.key, tenant)
            else:
                # Demotion drains one replica's entry back to the shard.
                migration_ns += self.contention.line_transfer_ns
        if migration_ns:
            self.migration_ns_total += migration_ns
            self._migration_ns[pp.index] = (
                self._migration_ns.get(pp.index, 0.0) + migration_ns
            )
        if promoted:
            self._eseq += 1
            h = min(max(self._eseq - 1, 0), self.num_cores - 1)
            core = self._rr
            self._rr = (self._rr + 1) % self.num_cores
            self._route[pp.index] = (True, h, False)
            if self.tracer.enabled:
                self.tracer.emit(EV_SPRAY, core=core, seq=self._eseq,
                                 index=pp.index)
            return core
        tenant = tenant_of(pp.key, self.placement.num_tenants,
                           self.placement.seed)
        count = self.mice_state.lookup(pp.key, tenant)
        resident = self.mice_state.update(
            pp.key, (count or 0) + 1, tenant
        )
        # Quota-exhausted tenants degrade to stateless forwarding; the
        # packet still ships (the drop cause names the *state entry*).
        self._route[pp.index] = (False, 0, not resident)
        return self._steer_rss(pp)

    def note_fault_drop(self, core: int, pp: PerfPacket) -> None:
        """A fault stole a steered packet: forget its routing record (any
        migration it triggered has already been charged globally)."""
        self._route.pop(pp.index, None)
        self._migration_ns.pop(pp.index, None)

    def service_ns(self, core: int, pp: PerfPacket, start_ns: float) -> float:
        c = self.costs
        counters = self.counters.cores[core]
        if not pp.valid:
            counters.charge_packet(dispatch_ns=c.d, compute_ns=c.c1,
                                   state_accesses=0)
            return c.d + c.c1
        elephant, h, stateless = self._route.pop(
            pp.index, (False, 0, False)
        )
        migration_ns = self._migration_ns.pop(pp.index, 0.0)
        # The classification path itself is not free: one sketch update
        # per packet, modeled as a single uncontended atomic.
        classify_ns = self.contention.atomic_ns
        if elephant:
            self.elephant_packets += 1
            if self.tracer.enabled:
                self.tracer.emit(EV_HISTORY_DEPTH, ts_ns=start_ns, core=core,
                                 depth=h)
            history = h * c.c2
            compute = c.c1 + history + classify_ns
            miss_frac, spill = self.l2.access(core, pp.key)
            total = c.d + compute + spill + migration_ns
            counters.charge_packet(
                dispatch_ns=c.d,
                compute_ns=compute + spill,
                transfer_ns=migration_ns,
                state_accesses=1,
                l2_misses=miss_frac + (1.0 if migration_ns else 0.0),
                program_ns=compute + spill + migration_ns,
                history_ns=history,
            )
            return total
        self.mice_packets += 1
        if stateless:
            self.stateless_packets += 1
            compute = c.c1 + classify_ns
            counters.charge_packet(
                dispatch_ns=c.d,
                compute_ns=compute,
                transfer_ns=migration_ns,
                state_accesses=0,
                program_ns=compute + migration_ns,
            )
            return c.d + compute + migration_ns
        miss_frac, spill = self.l2.access(core, pp.key)
        compute = c.c1 + classify_ns + spill
        counters.charge_packet(
            dispatch_ns=c.d,
            compute_ns=compute,
            transfer_ns=migration_ns,
            state_accesses=1,
            l2_misses=miss_frac + (1.0 if migration_ns else 0.0),
            program_ns=compute + migration_ns,
        )
        return c.d + compute + migration_ns

    # ``columnar_eligible`` stays the BaseEngine default (False): steering
    # reads classifier state that mutates per packet, so the scalar event
    # loop is the reference and only path (docs/HOTPATH.md fallback rules).

    def placement_summary(self) -> dict:
        """Placement/quota counters for ``SimResult.placement_stats``
        (the hook ``simulate`` probes, mirroring ``fault_summary``)."""
        clf = self.classifier.snapshot()
        state = self.mice_state.stats_snapshot()
        return {
            "promotions": clf["promotions"],
            "demotions": clf["demotions"],
            "decays": clf["decays"],
            "promoted_now": clf["promoted_now"],
            "migrations": self.migrations,
            "migration_ns_total": self.migration_ns_total,
            "elephant_packets": self.elephant_packets,
            "mice_packets": self.mice_packets,
            "stateless_packets": self.stateless_packets,
            "statemap_entries": state["entries"],
            "statemap_grow_events": state["grow_events"],
            "tenant_quota_drops": state["quota_drops"],
            "tenant_quota_drops_total": sum(state["quota_drops"].values()),
        }
