"""Content-addressed on-disk cache for synthesized workloads.

Repeated benches used to re-synthesize every trace and re-lower every
perf-trace from scratch — the dominant fixed cost of a sweep once the
MLFFR search itself is warm.  This cache keys both by the
:meth:`~repro.scenario.spec.TraceSpec.content_hash` (which already folds
in :data:`~repro.scenario.spec.SPEC_SCHEMA`) plus this module's own
:data:`CACHE_SCHEMA`, stored under a ``v<N>/`` directory:

    results/cache/v1/traces/<hash>.scrt     — SCRT binary traces
    results/cache/v1/perf/<program>-<hash>.pkl — lowered PerfTraces

Invalidation rule: bump :data:`CACHE_SCHEMA` whenever trace synthesis,
packet lowering, or the stored formats change semantically — the version
directory changes, so every stale entry stops matching at once (CI keys
its actions cache on this file for the same reason).  Entries that fail
to load (truncated, corrupted, or hand-poisoned files) are deleted and
treated as misses, never trusted.

Writes are atomic (temp file + ``os.replace``), so concurrent executor
workers can warm the same cache without torn entries.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from struct import error as struct_error
from typing import Dict, Optional, Union

from ..cpu.simulator import PerfTrace
from ..traffic.trace import Trace
from .spec import TraceSpec

__all__ = ["CACHE_SCHEMA", "DEFAULT_CACHE_DIR", "TraceCache"]

#: Bump on any semantic change to synthesis/lowering or the on-disk
#: formats; old entries live under the old version directory and are
#: simply never read again.
#: v2: PerfTrace became a struct-of-arrays container and pickles columns
#: only — pre-columnar row-major pickles are orphaned, not loaded.
CACHE_SCHEMA = 2

#: Where the CLI and CI put the cache unless told otherwise.
DEFAULT_CACHE_DIR = "results/cache"


class TraceCache:
    """Trace + perf-trace store under ``<root>/v<CACHE_SCHEMA>/``."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt_evictions = 0

    @property
    def schema_dir(self) -> Path:
        return self.root / f"v{CACHE_SCHEMA}"

    def trace_path(self, spec: TraceSpec) -> Path:
        return self.schema_dir / "traces" / f"{spec.content_hash()}.scrt"

    def perf_path(self, program: str, spec: TraceSpec) -> Path:
        return self.schema_dir / "perf" / f"{program}-{spec.content_hash()}.pkl"

    # -- traces ---------------------------------------------------------------

    def load_trace(self, spec: TraceSpec) -> Optional[Trace]:
        """The cached trace for ``spec``, or ``None`` on miss.

        A present-but-unloadable entry (truncated write, corruption,
        poisoning) is deleted and reported as a miss: the caller
        re-synthesizes and overwrites, so the cache self-heals.
        """
        path = self.trace_path(spec)
        if not path.exists():
            self.misses += 1
            return None
        try:
            trace = Trace.load(path)
        except (ValueError, OSError, struct_error):
            self._discard(path)
            self.corrupt_evictions += 1
            self.misses += 1
            return None
        # SCRT files are named by hash; restore the human-readable name a
        # fresh synthesis would produce so downstream labels match.
        trace.name = spec.display_name
        self.hits += 1
        return trace

    def store_trace(self, spec: TraceSpec, trace: Trace) -> Path:
        """Atomically persist ``trace`` under its spec hash."""
        path = self.trace_path(spec)
        tmp = self._tmp_sibling(path)
        trace.save(tmp)
        os.replace(tmp, path)
        return path

    # -- lowered perf-traces --------------------------------------------------

    def load_perf_trace(self, program: str, spec: TraceSpec) -> Optional[PerfTrace]:
        path = self.perf_path(program, spec)
        if not path.exists():
            self.misses += 1
            return None
        try:
            with path.open("rb") as fh:
                obj = pickle.load(fh)
        except Exception:  # noqa: BLE001 — any unpickling failure is a miss
            self._discard(path)
            self.corrupt_evictions += 1
            self.misses += 1
            return None
        # Poisoning guard: only accept the exact shape we wrote, for the
        # program we were asked about.
        if not isinstance(obj, PerfTrace) or obj.program_name != program:
            self._discard(path)
            self.corrupt_evictions += 1
            self.misses += 1
            return None
        self.hits += 1
        return obj

    def store_perf_trace(self, program: str, spec: TraceSpec, pt: PerfTrace) -> Path:
        path = self.perf_path(program, spec)
        tmp = self._tmp_sibling(path)
        with tmp.open("wb") as fh:
            pickle.dump(pt, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    # -- bookkeeping ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_evictions": self.corrupt_evictions,
        }

    def _tmp_sibling(self, path: Path) -> Path:
        """A same-directory temp path unique per writer process, so
        ``os.replace`` is atomic and concurrent workers never collide."""
        path.parent.mkdir(parents=True, exist_ok=True)
        return path.parent / f".{path.name}.{os.getpid()}.tmp"

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
