"""Declarative scenario layer: spec → cache → composition root → executor.

The one vocabulary for "run this experiment": a frozen, content-hashed
:class:`Scenario` spec; :func:`build_stack`/:class:`StackBuilder` as the
single composition root; a content-addressed on-disk :class:`TraceCache`
for synthesized and lowered workloads; and a :class:`ScenarioExecutor`
that runs scenario grids serially or over a process pool with results
bit-identical to serial execution.  See ``docs/API.md``.
"""

from .build import (
    ScenarioResult,
    Stack,
    StackBuilder,
    build_perf_trace,
    build_stack,
    build_trace,
    run_scenario,
)
from .cache import CACHE_SCHEMA, DEFAULT_CACHE_DIR, TraceCache
from .executor import ScenarioExecutor
from .spec import (
    PACKET_SIZE_CONNTRACK,
    PACKET_SIZE_DEFAULT,
    SINGLE_FLOW_WORKLOAD,
    SPEC_SCHEMA,
    Scenario,
    TraceSpec,
    freeze_engine_kwargs,
    packet_size_for,
    scenario_grid,
)

__all__ = [
    "SPEC_SCHEMA",
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "PACKET_SIZE_DEFAULT",
    "PACKET_SIZE_CONNTRACK",
    "SINGLE_FLOW_WORKLOAD",
    "Scenario",
    "TraceSpec",
    "freeze_engine_kwargs",
    "packet_size_for",
    "scenario_grid",
    "TraceCache",
    "Stack",
    "StackBuilder",
    "ScenarioResult",
    "build_trace",
    "build_perf_trace",
    "build_stack",
    "run_scenario",
    "ScenarioExecutor",
]
