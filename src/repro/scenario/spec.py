"""Declarative experiment specs: the single vocabulary for "one run".

Every figure, ablation, perf suite, and CLI sweep used to hand-roll the
same stack — trace synthesis → NIC → engine → simulator → MLFFR — each
with its own copy of the packet-size, seed, and cores conventions.  A
:class:`Scenario` freezes all of those knobs into one hashable value
object; :mod:`repro.scenario.build` is the only place that turns one
into runnable objects.

Two frozen dataclasses:

* :class:`TraceSpec` — everything that determines a synthesized workload
  (distribution, flows, packet cap, seed, direction, truncation size).
  Its :meth:`~TraceSpec.content_hash` keys the on-disk trace cache.
* :class:`Scenario` — a TraceSpec plus the measured configuration
  (program, technique, cores, line rate, burst, engine kwargs).  Equal
  scenarios produce bit-identical MLFFR results by construction, whether
  they run serially or on a worker process.

The content hash covers a schema version (:data:`SPEC_SCHEMA`), so any
incompatible change to the canonical shape invalidates old cache
entries and old saved grids at once.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

from ..parallel.registry import technique_names
from ..programs.registry import make_program, program_names

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..faults.spec import FaultSpec
    from ..placement.spec import PlacementSpec

__all__ = [
    "SPEC_SCHEMA",
    "PACKET_SIZE_DEFAULT",
    "PACKET_SIZE_CONNTRACK",
    "SINGLE_FLOW_WORKLOAD",
    "MAX_NUM_FLOWS",
    "EngineKwargs",
    "packet_size_for",
    "freeze_engine_kwargs",
    "TraceSpec",
    "Scenario",
    "scenario_grid",
]

#: Bump on any incompatible change to the canonical spec shape; part of
#: every content hash, so old cache entries stop matching automatically.
#: 2: scenarios carry an optional FaultSpec (repro.faults).
#: 3: scenarios carry an optional PlacementSpec (repro.placement) for
#:    tenancy and elephant/mice placement.
SPEC_SCHEMA = 3

#: Upper bound on synthesized flow counts — generous headroom over the
#: multitenant suite's 10^6-flow ceiling while still catching sign slips
#: and unit mistakes (e.g. passing bytes where a count belongs).
MAX_NUM_FLOWS = 16_000_000

#: Fixed packet sizes used across baselines (§4.2).
PACKET_SIZE_DEFAULT = 192
PACKET_SIZE_CONNTRACK = 256

#: The Figure 1 workload: one elephant TCP connection.
SINGLE_FLOW_WORKLOAD = "single-flow"

#: Engine construction kwargs, frozen as sorted (name, value) pairs so
#: the spec stays hashable and picklable.
EngineKwargs = Tuple[Tuple[str, object], ...]

#: Value types allowed inside engine kwargs: JSON scalars only, so the
#: canonical hash and the multiprocess pickle round-trip agree.
_SCALARS = (bool, int, float, str, type(None))


def packet_size_for(program: str) -> int:
    """The §4.1/§4.2 default: 256 B for conntrack (larger metadata), 192 B
    for everything else."""
    return PACKET_SIZE_CONNTRACK if program == "conntrack" else PACKET_SIZE_DEFAULT


def freeze_engine_kwargs(kwargs: Optional[Mapping[str, object]]) -> EngineKwargs:
    """Sorted, validated (name, value) pairs from an engine-kwargs dict."""
    items = sorted((kwargs or {}).items())
    for name, value in items:
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"engine kwarg {name!r} must be a scalar (bool/int/float/"
                f"str/None), got {type(value).__name__}; runtime objects "
                "like tracers are wired by the builder, not the spec"
            )
    return tuple(items)


def _content_hash(payload: Dict[str, object]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TraceSpec:
    """Everything that determines a synthesized evaluation workload.

    ``packet_size`` is the on-wire truncation (§4.2); ``None`` keeps the
    synthesized sizes (the functional CLI path).  ``workload`` is a
    :data:`~repro.traffic.distributions.TRACE_DISTRIBUTIONS` name or
    :data:`SINGLE_FLOW_WORKLOAD`.
    """

    workload: str
    num_flows: int = 60
    max_packets: int = 4000
    seed: int = 7
    bidirectional: bool = False
    packet_size: Optional[int] = PACKET_SIZE_DEFAULT

    def __post_init__(self) -> None:
        if self.num_flows < 1:
            raise ValueError("need at least one flow")
        if self.max_packets < 1:
            raise ValueError("need at least one packet")
        if self.packet_size is not None and self.packet_size < 1:
            raise ValueError("packet_size must be positive (or None)")

    @property
    def display_name(self) -> str:
        """The name a freshly synthesized trace would carry."""
        if self.workload == SINGLE_FLOW_WORKLOAD:
            return SINGLE_FLOW_WORKLOAD
        return f"{self.workload}-{self.num_flows}flows"

    def canonical_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["schema"] = SPEC_SCHEMA
        return data

    def content_hash(self) -> str:
        """Hex digest keying the on-disk trace cache."""
        return _content_hash(self.canonical_dict())

    def with_seed(self, seed: int) -> "TraceSpec":
        return dataclasses.replace(self, seed=seed)


@dataclass(frozen=True)
class Scenario:
    """One fully specified measurement: workload + technique + machine.

    Construct through :meth:`create`, which validates names against the
    program/technique registries and applies the paper's packet-size and
    direction conventions.  ``collect_latency`` and ``profile`` are
    measurement options (they never change the MLFFR series), included
    in the hash so "what exactly ran" stays content-addressed.
    """

    program: str
    technique: str
    cores: int
    trace: TraceSpec
    line_rate_gbps: float = 100.0
    burst_size: int = 1
    engine_kwargs: EngineKwargs = ()
    collect_latency: bool = False
    profile: bool = False
    #: optional fault regime (repro.faults.FaultSpec); None = fault-free.
    #: Participates in the content hash, so a faulted scenario can never
    #: share a cached result with its fault-free twin.
    faults: Optional["FaultSpec"] = None
    #: optional tenancy/placement config (repro.placement.PlacementSpec);
    #: None = single-tenant, no placement engine wiring.  Hashed for the
    #: same reason as ``faults``.
    placement: Optional["PlacementSpec"] = None

    @classmethod
    def create(
        cls,
        program: str,
        workload: str,
        technique: str,
        cores: int,
        *,
        num_flows: int = 60,
        max_packets: int = 4000,
        seed: int = 7,
        packet_size: Optional[int] = None,
        line_rate_gbps: float = 100.0,
        burst_size: int = 1,
        engine_kwargs: Optional[Mapping[str, object]] = None,
        collect_latency: bool = False,
        profile: bool = False,
        faults: Optional["FaultSpec"] = None,
        placement: Optional["PlacementSpec"] = None,
    ) -> "Scenario":
        """Validated scenario with the evaluation's defaults filled in.

        ``packet_size=None`` picks the per-program §4.2 default;
        bidirectionality follows the program (conntrack and friends see
        both directions, as in the paper's methodology).
        """
        known = program_names()
        if program not in known:
            raise ValueError(
                f"unknown program {program!r}; known: {', '.join(known)}"
            )
        if technique not in technique_names():
            raise ValueError(
                f"unknown technique {technique!r}; "
                f"known: {', '.join(technique_names())}"
            )
        if cores < 1:
            raise ValueError("need at least one core")
        if not 1 <= num_flows <= MAX_NUM_FLOWS:
            raise ValueError(
                f"num_flows must be in [1, {MAX_NUM_FLOWS}], got {num_flows}"
            )
        if placement is not None and not 1 <= placement.num_tenants <= num_flows:
            raise ValueError(
                f"num_tenants must be in [1, num_flows={num_flows}] "
                f"(more tenants than flows leaves empty tenants), "
                f"got {placement.num_tenants}"
            )
        size = packet_size if packet_size is not None else packet_size_for(program)
        bidirectional = bool(make_program(program).bidirectional)
        return cls(
            program=program,
            technique=technique,
            cores=cores,
            trace=TraceSpec(
                workload=workload,
                num_flows=num_flows,
                max_packets=max_packets,
                seed=seed,
                bidirectional=bidirectional,
                packet_size=size,
            ),
            line_rate_gbps=line_rate_gbps,
            burst_size=burst_size,
            engine_kwargs=freeze_engine_kwargs(engine_kwargs),
            collect_latency=collect_latency,
            profile=profile,
            faults=faults,
            placement=placement,
        )

    @property
    def workload(self) -> str:
        return self.trace.workload

    def engine_kwargs_dict(self) -> Dict[str, object]:
        return dict(self.engine_kwargs)

    def canonical_dict(self) -> Dict[str, object]:
        return {
            "schema": SPEC_SCHEMA,
            "program": self.program,
            "technique": self.technique,
            "cores": self.cores,
            "trace": self.trace.canonical_dict(),
            "line_rate_gbps": self.line_rate_gbps,
            "burst_size": self.burst_size,
            "engine_kwargs": [list(pair) for pair in self.engine_kwargs],
            "collect_latency": self.collect_latency,
            "profile": self.profile,
            "faults": None if self.faults is None else self.faults.canonical_dict(),
            "placement": (
                None if self.placement is None else self.placement.canonical_dict()
            ),
        }

    def content_hash(self) -> str:
        """Hex digest identifying this scenario (schema-versioned)."""
        return _content_hash(self.canonical_dict())

    def with_seed(self, seed: int) -> "Scenario":
        """The same scenario over a workload re-synthesized with ``seed``
        (the perf suite's repetition policy)."""
        return dataclasses.replace(self, trace=self.trace.with_seed(seed))

    def with_faults(self, faults: Optional["FaultSpec"]) -> "Scenario":
        """The same measurement under a different fault regime."""
        return dataclasses.replace(self, faults=faults)

    def with_placement(self, placement: Optional["PlacementSpec"]) -> "Scenario":
        """The same measurement under a different tenancy/placement config."""
        return dataclasses.replace(self, placement=placement)

    def describe(self) -> str:
        base = (
            f"{self.program} @ {self.workload}, {self.technique}, "
            f"{self.cores} cores (seed {self.trace.seed})"
        )
        if self.faults is not None:
            base += f" [faults: {self.faults.describe()}]"
        if self.placement is not None:
            base += f" [{self.placement.describe()}]"
        return base


def scenario_grid(
    program: str,
    workload: str,
    techniques: Iterable[str],
    cores_list: Iterable[int],
    *,
    engine_kwargs_by_technique: Optional[Mapping[str, Mapping[str, object]]] = None,
    **common: object,
) -> List[Scenario]:
    """The (technique × cores) grid of one figure panel, in sweep order.

    ``common`` is forwarded to :meth:`Scenario.create` (num_flows,
    max_packets, seed, packet_size, ...).  The order — techniques outer,
    cores inner — matches the historical ``scaling_sweep`` order, so
    serial and parallel execution merge results identically.
    """
    kwargs_map = engine_kwargs_by_technique or {}
    return [
        Scenario.create(
            program, workload, technique, cores,
            engine_kwargs=kwargs_map.get(technique),
            **common,  # type: ignore[arg-type]
        )
        for technique in techniques
        for cores in cores_list
    ]
