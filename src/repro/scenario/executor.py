"""Scenario grids, serially or over a process pool — same results either way.

MLFFR points are embarrassingly parallel (the paper's Figure 6 grid is
8 panels × 4 techniques × up to 14 core counts), but the repo historically
ran every sweep strictly serially.  :class:`ScenarioExecutor` fans a
scenario list out over a ``ProcessPoolExecutor`` while keeping the
results **bit-identical to serial execution by construction**:

* every worker rebuilds its stack from the scenario spec alone (seeded
  synthesis, seeded engines) — no shared mutable state crosses the
  process boundary;
* results are merged strictly in submission order (``futures[i].result()``
  in index order), so the output list never depends on completion order,
  the scheduler, or any clock;
* per-worker telemetry comes back as registry snapshots and is folded
  into the parent registry in that same deterministic order.

The only thing workers *share* is the content-addressed
:class:`~repro.scenario.cache.TraceCache`, whose writes are atomic.
Event rings are not shipped across processes (they are unbounded-ish and
interleaving would be schedule-dependent); parallel runs aggregate
metrics only, which `scr-repro inspect` reports identically.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Union

from ..hostprof.clock import NULL_HOSTPROF, PhaseClock
from ..telemetry.artifact import Telemetry
from .build import ScenarioResult, StackBuilder, run_scenario
from .cache import TraceCache
from .spec import Scenario

__all__ = ["ScenarioExecutor"]


def _run_worker(
    scenario: Scenario,
    cache_root: Optional[str],
    instrumented: bool,
    profiled: bool = False,
) -> ScenarioResult:
    """Measure one scenario in a worker process (module-level: picklable).

    Each call builds a fresh :class:`StackBuilder` — per-run state never
    leaks between scenarios — and returns a compacted, picklable result
    carrying the worker's metrics snapshot (and, when ``profiled``, its
    PhaseClock snapshot) for deterministic merging.
    """
    cache = TraceCache(cache_root) if cache_root is not None else None
    tele = Telemetry() if instrumented else None
    clock = PhaseClock(enabled=True) if profiled else NULL_HOSTPROF
    result = run_scenario(
        scenario, builder=StackBuilder(cache, hostprof=clock), telemetry=tele
    )
    if tele is not None:
        result.metrics = tele.registry.snapshot()
    if profiled:
        result.host_phases = clock.snapshot()
    return result.compact()


class ScenarioExecutor:
    """Runs scenario lists; ``jobs > 1`` fans out over processes.

    The serial path shares one :class:`StackBuilder` across calls (so a
    sweep synthesizes each workload once); the parallel path relies on
    the disk cache for the same reuse.  ``telemetry`` is instrumented on
    both paths; parallel workers return metric snapshots that are merged
    into it in submission order.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[TraceCache] = None,
        cache_dir: Optional[Union[str, object]] = None,
        telemetry: Optional[Telemetry] = None,
        hostprof: PhaseClock = NULL_HOSTPROF,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if cache is None and cache_dir is not None:
            cache = TraceCache(str(cache_dir))
        self.jobs = jobs
        self.cache = cache
        self.telemetry = telemetry
        self.hostprof = hostprof
        self._builder = StackBuilder(cache, hostprof=hostprof)

    @property
    def builder(self) -> StackBuilder:
        """The serial path's shared builder (exposed for compat shims)."""
        return self._builder

    def run(self, scenarios: Sequence[Scenario]) -> List[ScenarioResult]:
        """Measure every scenario; results are in input order always."""
        if self.jobs == 1 or len(scenarios) <= 1:
            return [
                run_scenario(s, builder=self._builder, telemetry=self.telemetry)
                for s in scenarios
            ]
        return self._run_parallel(scenarios)

    def run_one(self, scenario: Scenario) -> ScenarioResult:
        return self.run([scenario])[0]

    def _run_parallel(
        self, scenarios: Sequence[Scenario]
    ) -> List[ScenarioResult]:
        cache_root = str(self.cache.root) if self.cache is not None else None
        instrumented = self.telemetry is not None and self.telemetry.enabled
        profiled = self.hostprof.enabled
        workers = min(self.jobs, len(scenarios))
        self.hostprof.push("executor.fanout")
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_run_worker, s, cache_root, instrumented,
                                profiled)
                    for s in scenarios
                ]
                # Collect strictly in submission order: the merge (and any
                # telemetry fold-in) is independent of completion order.
                results = [f.result() for f in futures]
        finally:
            self.hostprof.pop()
        if instrumented and self.telemetry is not None:
            for result in results:
                if result.metrics is not None:
                    self.telemetry.registry.merge_snapshot(result.metrics)
        if profiled:
            # Worker CPU time folds under a distinct `worker` root (never
            # under executor.fanout): N workers' summed wall exceeds the
            # parent's fan-out wall by design — that surplus *is* the
            # parallelism. Submission order keeps the fold deterministic.
            for result in results:
                if result.host_phases is not None:
                    self.hostprof.merge_snapshot(
                        result.host_phases, prefix="worker"
                    )
        return results
