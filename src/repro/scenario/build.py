"""The composition root: one place that turns a Scenario into a stack.

``trace synthesis → perf-trace lowering → engine → MLFFR`` used to be
wired by hand in four places (`bench.runner`, `bench.figures`,
`perf.suite`, the CLI), each with its own copy of the conventions.
:class:`StackBuilder` is now the only wiring; everything else passes a
:class:`~repro.scenario.spec.Scenario` through :func:`run_scenario`.

Determinism contract: a scenario fully determines its workload (seeded
synthesis), its engine (explicit kwargs, seeded RNGs only), and the
MLFFR search (pure binary search), so two processes running the same
scenario produce bit-identical results — the property the multiprocess
executor's serial-equivalence guarantee rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..cpu.simulator import PerfTrace, SimResult
from ..hostprof.clock import NULL_HOSTPROF, PhaseClock
from ..obs.spans import NULL_SPANS, SpanEmitter
from ..parallel.base import BaseEngine
from ..parallel.registry import make_engine
from ..programs.base import PacketProgram
from ..programs.registry import make_program
from ..telemetry.artifact import NULL_TELEMETRY, Telemetry
from ..telemetry.events import NULL_TRACER, EventTracer
from ..traffic.distributions import TRACE_DISTRIBUTIONS
from ..traffic.synthesis import single_flow_trace, synthesize_trace
from ..traffic.trace import Trace
from .cache import TraceCache
from .spec import SINGLE_FLOW_WORKLOAD, Scenario, TraceSpec

if TYPE_CHECKING:  # pragma: no cover — type-only; avoids a package cycle
    from ..bench.mlffr import MlffrResult

__all__ = [
    "Stack",
    "StackBuilder",
    "ScenarioResult",
    "build_trace",
    "build_perf_trace",
    "build_stack",
    "run_scenario",
]

#: §4.1 synthesis conventions: a short flow interarrival keeps many flows
#: concurrently active inside the packet cap, as in the real captures
#: ("states created and destroyed throughout").
_FLOW_INTERARRIVAL_NS = 3_000
_FLOW_DURATION_NS = 200_000


@dataclass
class Stack:
    """A scenario turned into runnable objects."""

    scenario: Scenario
    program: PacketProgram
    perf_trace: PerfTrace
    engine: BaseEngine


@dataclass
class ScenarioResult:
    """One measured scenario, JSON-safe except for the optional ``mlffr``.

    ``mlffr`` (the full :class:`~repro.bench.mlffr.MlffrResult`, with the
    simulation at the reported rate) is only present for in-process runs;
    results crossing a process boundary are :meth:`compact`-ed to the
    derived fields, which serial and parallel execution populate
    identically.
    """

    scenario: Scenario
    mlffr_mpps: float
    iterations: int
    probes: List[Tuple[float, float]]
    counters: Optional[dict] = None
    latency_ns: Optional[Dict[str, float]] = None
    profile: Optional[dict] = None
    #: worker registry snapshot, merged by the executor (parallel runs).
    metrics: Optional[Dict[str, dict]] = None
    #: injector + recovery counters at the reported rate (faulted runs).
    fault_stats: Optional[Dict[str, object]] = None
    #: placement/quota counters at the reported rate (hybrid runs).
    placement_stats: Optional[Dict[str, object]] = None
    #: worker PhaseClock snapshot, folded by the executor (profiled runs).
    host_phases: Optional[Dict[str, Dict[str, int]]] = None
    mlffr: Optional["MlffrResult"] = None

    def compact(self) -> "ScenarioResult":
        """Drop the in-process-only simulation payload (for pickling)."""
        return replace(self, mlffr=None)


class StackBuilder:
    """Memoizing factory for traces, lowered perf-traces, and engines.

    In-memory memos make repeated points of one sweep free; an optional
    :class:`TraceCache` extends the reuse across processes and runs.
    Engines are never cached — each scenario gets a fresh one.
    """

    def __init__(
        self,
        cache: Optional[TraceCache] = None,
        hostprof: PhaseClock = NULL_HOSTPROF,
    ) -> None:
        self.cache = cache
        self.hostprof = hostprof
        self._traces: Dict[TraceSpec, Trace] = {}
        self._perf: Dict[Tuple[str, TraceSpec], PerfTrace] = {}

    def trace(self, spec: TraceSpec) -> Trace:
        """The synthesized (and truncated) workload for ``spec``."""
        memo = self._traces.get(spec)
        if memo is not None:
            return memo
        hp = self.hostprof
        trace: Optional[Trace] = None
        if self.cache is not None:
            with hp.phase("trace.cache_load"):
                trace = self.cache.load_trace(spec)
        if trace is None:
            with hp.phase("trace.synthesize"):
                trace = _synthesize(spec)
            if self.cache is not None:
                with hp.phase("trace.cache_store"):
                    self.cache.store_trace(spec, trace)
        self._traces[spec] = trace
        return trace

    def perf_trace(self, program_name: str, spec: TraceSpec) -> PerfTrace:
        """``spec``'s trace lowered once for ``program_name``."""
        key = (program_name, spec)
        memo = self._perf.get(key)
        if memo is not None:
            return memo
        hp = self.hostprof
        pt: Optional[PerfTrace] = None
        if self.cache is not None:
            with hp.phase("perf.cache_load"):
                pt = self.cache.load_perf_trace(program_name, spec)
        if pt is None:
            trace = self.trace(spec)
            with hp.phase("perf.lower"):
                pt = PerfTrace.from_trace(trace, make_program(program_name))
            if self.cache is not None:
                with hp.phase("perf.cache_store"):
                    self.cache.store_perf_trace(program_name, spec, pt)
        self._perf[key] = pt
        return pt

    def engine(
        self,
        scenario: Scenario,
        tracer: EventTracer = NULL_TRACER,
        spans: SpanEmitter = NULL_SPANS,
    ) -> BaseEngine:
        kwargs = scenario.engine_kwargs_dict()
        if tracer.enabled:
            kwargs.setdefault("tracer", tracer)
        if spans.enabled:
            kwargs.setdefault("spans", spans)
        if self.hostprof.enabled:
            kwargs.setdefault("hostprof", self.hostprof)
        if scenario.faults is not None and scenario.technique == "scr":
            # The recovery cost model reads the fault regime's epoch.
            kwargs.setdefault("fault_epoch_len", scenario.faults.epoch_len)
        if scenario.placement is not None and scenario.technique == "hybrid":
            # The spec object itself is builder-wired (engine kwargs hold
            # JSON scalars only); its knobs are hashed via the scenario.
            kwargs.setdefault("placement", scenario.placement)
        with self.hostprof.phase("engine.build"):
            return make_engine(
                scenario.technique,
                make_program(scenario.program),
                scenario.cores,
                **kwargs,
            )

    def stack(
        self,
        scenario: Scenario,
        tracer: EventTracer = NULL_TRACER,
        spans: SpanEmitter = NULL_SPANS,
    ) -> Stack:
        return Stack(
            scenario=scenario,
            program=make_program(scenario.program),
            perf_trace=self.perf_trace(scenario.program, scenario.trace),
            engine=self.engine(scenario, tracer=tracer, spans=spans),
        )


def _synthesize(spec: TraceSpec) -> Trace:
    if spec.workload == SINGLE_FLOW_WORKLOAD:
        trace = single_flow_trace(
            spec.max_packets // 2, bidirectional=spec.bidirectional
        )
    else:
        trace = synthesize_trace(
            TRACE_DISTRIBUTIONS[spec.workload](),
            spec.num_flows,
            seed=spec.seed,
            bidirectional=spec.bidirectional,
            mean_flow_interarrival_ns=_FLOW_INTERARRIVAL_NS,
            flow_duration_ns=_FLOW_DURATION_NS,
            max_packets=spec.max_packets,
        )
    if spec.packet_size is not None:
        trace = trace.truncated(spec.packet_size)
    return trace


def build_trace(spec: TraceSpec, cache: Optional[TraceCache] = None) -> Trace:
    """One-shot convenience around :meth:`StackBuilder.trace`."""
    return StackBuilder(cache).trace(spec)


def build_perf_trace(
    scenario: Scenario, cache: Optional[TraceCache] = None
) -> PerfTrace:
    return StackBuilder(cache).perf_trace(scenario.program, scenario.trace)


def build_stack(
    scenario: Scenario,
    cache: Optional[TraceCache] = None,
    tracer: EventTracer = NULL_TRACER,
) -> Stack:
    """One-shot composition root (callers doing sweeps should hold a
    :class:`StackBuilder` so workload construction is shared)."""
    return StackBuilder(cache).stack(scenario, tracer=tracer)


def run_scenario(
    scenario: Scenario,
    builder: Optional[StackBuilder] = None,
    telemetry: Optional[Telemetry] = None,
) -> ScenarioResult:
    """Measure one scenario's MLFFR; the single replacement for the
    ad-hoc runner/figures/suite/CLI wiring.

    With an enabled ``telemetry``, the run is instrumented exactly as
    ``ExperimentRunner.mlffr_point`` historically was: probe events, the
    labelled per-point gauge, the iterations counter, and the
    counters/latency snapshot frozen at the reported rate.
    """
    # Imported lazily: repro.bench re-exports ExperimentRunner, which is
    # itself a shim over this module — a top-level import would cycle.
    from ..bench.mlffr import find_mlffr
    from ..perf.profiler import attribute_result

    builder = builder if builder is not None else StackBuilder()
    tele = telemetry if telemetry is not None else NULL_TELEMETRY
    instrumented = tele.enabled
    spans = getattr(tele, "spans", None) or NULL_SPANS
    hp = builder.hostprof
    hp.push("scenario.run")
    try:
        stack = builder.stack(
            scenario,
            tracer=tele.tracer if instrumented else NULL_TRACER,
            spans=spans if instrumented else NULL_SPANS,
        )
        plan = None
        if scenario.faults is not None and scenario.faults.any_faults:
            # Lazy: repro.faults.harness imports this module.
            from ..faults.plan import FaultPlan

            plan = FaultPlan(scenario.faults)
        hp.push("mlffr.search")
        try:
            res = find_mlffr(
                stack.perf_trace,
                stack.engine,
                line_rate_gbps=scenario.line_rate_gbps,
                burst_size=scenario.burst_size,
                tracer=tele.tracer if instrumented else NULL_TRACER,
                collect_latency=scenario.collect_latency or instrumented,
                faults=plan,
                spans=spans if instrumented else NULL_SPANS,
                hostprof=hp,
            )
        finally:
            hp.pop()
    finally:
        hp.pop()
    result = ScenarioResult(
        scenario=scenario,
        mlffr_mpps=res.mlffr_mpps,
        iterations=res.iterations,
        probes=list(res.probes),
        mlffr=res,
    )
    best = res.result_at_mlffr
    if best is not None:
        result.fault_stats = best.fault_stats
        result.placement_stats = best.placement_stats
        if instrumented or scenario.collect_latency:
            result.counters = best.counters.snapshot()
            hist = best.latency_histogram
            if hist is not None and hist.count:
                result.latency_ns = hist.percentiles()
        if scenario.profile:
            result.profile = attribute_result(best).to_dict()
    if instrumented:
        _record_point(tele, scenario, result, best)
    return result


def _record_point(
    tele: Telemetry,
    scenario: Scenario,
    result: ScenarioResult,
    best: Optional[SimResult],
) -> None:
    """Fold one MLFFR point into the telemetry registry."""
    reg = tele.registry
    labels = (
        f'program="{scenario.program}",workload="{scenario.workload}",'
        f'technique="{scenario.technique}",cores="{scenario.cores}"'
    )
    reg.gauge(
        "mlffr_mpps{%s}" % labels,
        help="maximum loss-free forwarding rate in Mpps (RFC 2544, <4% loss)",
    ).set(result.mlffr_mpps)
    reg.counter("mlffr_search_iterations").inc(result.iterations)
    if best is None:
        return
    hist = best.latency_histogram
    if hist is not None and hist.count:
        reg.histogram("latency_ns", help="per-packet latency at MLFFR").merge(hist)
    placement = result.placement_stats
    if placement is not None:
        for metric in (
            "promotions",
            "demotions",
            "migrations",
            "tenant_quota_drops_total",
            "statemap_grow_events",
        ):
            value = placement.get(metric)
            if isinstance(value, (int, float)) and value:
                reg.counter(
                    "placement_%s{%s}" % (metric, labels),
                    help="elephant/mice placement counter at MLFFR "
                    "(repro.placement)",
                ).inc(value)
