"""Cycle-attribution profiler: where did every busy nanosecond go?

Decomposes a simulated run into the Appendix A cost components, per core:

* ``d``  — dispatch time (driver/framework labor),
* ``c1`` — current-packet compute (program work minus fast-forward),
* ``c2`` — history fast-forward time (the ``(k-1)·c2`` term),
* ``contention`` — lock/atomic waiting plus cross-core line transfers.

The decomposition comes straight from :class:`~repro.cpu.counters`
accumulators (``history_ns`` carves ``c2`` out of ``compute_ns``), so
coverage — the fraction of busy time the four components explain — is 1.0
by construction for the built-in engines; the figure is still computed
and reported so a future engine that charges time outside the buckets
shows up as a coverage drop, not silent misattribution.

:func:`model_residuals` closes the measure-then-validate loop (Fig. 11):
it reports, per core count, the relative residual of measured throughput
against the analytic prediction ``k / (t + (k-1)·c2)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..bench.model import predicted_scr_mpps
from ..cpu.costmodel import TABLE4_PARAMS
from ..cpu.simulator import SimResult

__all__ = [
    "CoreAttribution",
    "RunAttribution",
    "attribute_result",
    "attribution_from_snapshot",
    "model_residuals",
]


@dataclass
class CoreAttribution:
    """One core's busy time split into the Appendix A components (ns)."""

    core_id: int
    packets: int
    dispatch_ns: float  # d
    current_compute_ns: float  # c1 (incl. in-program memory effects)
    history_ns: float  # (k-1)·c2 fast-forward
    contention_ns: float  # lock waits + cache-line transfers
    busy_ns: float
    utilization: float = 0.0

    @property
    def attributed_ns(self) -> float:
        return (self.dispatch_ns + self.current_compute_ns
                + self.history_ns + self.contention_ns)

    @property
    def coverage(self) -> float:
        """Fraction of busy time the four components explain."""
        if self.busy_ns <= 0:
            return 1.0
        return self.attributed_ns / self.busy_ns

    def to_dict(self) -> dict:
        return {
            "core_id": self.core_id,
            "packets": self.packets,
            "dispatch_ns": self.dispatch_ns,
            "current_compute_ns": self.current_compute_ns,
            "history_ns": self.history_ns,
            "contention_ns": self.contention_ns,
            "busy_ns": self.busy_ns,
            "utilization": self.utilization,
            "coverage": self.coverage,
        }


@dataclass
class RunAttribution:
    """Per-core attributions plus the aggregate coverage figure."""

    cores: List[CoreAttribution] = field(default_factory=list)
    duration_ns: float = 0.0

    @property
    def total_busy_ns(self) -> float:
        return sum(c.busy_ns for c in self.cores)

    @property
    def coverage(self) -> float:
        busy = self.total_busy_ns
        if busy <= 0:
            return 1.0
        return sum(c.attributed_ns for c in self.cores) / busy

    def totals(self) -> dict:
        return {
            "packets": sum(c.packets for c in self.cores),
            "dispatch_ns": sum(c.dispatch_ns for c in self.cores),
            "current_compute_ns": sum(c.current_compute_ns for c in self.cores),
            "history_ns": sum(c.history_ns for c in self.cores),
            "contention_ns": sum(c.contention_ns for c in self.cores),
            "busy_ns": self.total_busy_ns,
            "coverage": self.coverage,
        }

    def to_dict(self) -> dict:
        return {
            "duration_ns": self.duration_ns,
            "cores": [c.to_dict() for c in self.cores],
            "totals": self.totals(),
        }


def _core_from_snapshot(core: dict, duration_ns: float) -> CoreAttribution:
    busy = core.get("busy_ns", 0.0)
    compute = core.get("compute_ns", 0.0)
    history = core.get("history_ns", 0.0)
    return CoreAttribution(
        core_id=core.get("core_id", 0),
        packets=core.get("packets", 0),
        dispatch_ns=core.get("dispatch_ns", 0.0),
        current_compute_ns=compute - history,
        history_ns=history,
        contention_ns=core.get("wait_ns", 0.0) + core.get("transfer_ns", 0.0),
        busy_ns=busy,
        utilization=(min(1.0, busy / duration_ns) if duration_ns > 0 else 0.0),
    )


def attribution_from_snapshot(
    snapshot: dict, duration_ns: float = 0.0
) -> RunAttribution:
    """Attribution from a ``SystemCounters.snapshot()`` dict (e.g. one
    reloaded from a telemetry run artifact's ``metrics.counters``)."""
    return RunAttribution(
        cores=[_core_from_snapshot(c, duration_ns)
               for c in snapshot.get("cores", [])],
        duration_ns=duration_ns,
    )


def attribute_result(result: SimResult) -> RunAttribution:
    """Attribute one simulation run's busy time (live counters path)."""
    return attribution_from_snapshot(
        result.counters.snapshot(), duration_ns=result.duration_ns
    )


def model_residuals(
    program_name: str,
    measured: Sequence[Tuple[int, float]],
    costs=None,
) -> Dict[str, dict]:
    """Per-core-count residuals of measured Mpps vs the Appendix A model.

    Returns ``{str(cores): {measured_mpps, predicted_mpps, residual}}``
    where ``residual = (measured - predicted) / predicted`` — positive
    means the simulator beats the analytic prediction.  Keys are strings
    so the mapping round-trips through JSON unchanged.
    """
    if costs is None:
        costs = TABLE4_PARAMS[program_name]
    out: Dict[str, dict] = {}
    for cores, measured_mpps in measured:
        predicted = predicted_scr_mpps(costs, cores)
        out[str(cores)] = {
            "measured_mpps": measured_mpps,
            "predicted_mpps": predicted,
            "residual": (measured_mpps - predicted) / predicted,
        }
    return out
