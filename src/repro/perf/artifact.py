"""Schema-versioned benchmark artifacts: ``BENCH_<name>.json``.

One artifact captures one suite run as durable, comparable numbers:

* **provenance** — git SHA, python/platform, creation time, the
  ``TABLE4_PARAMS`` cost rows in effect, and the seed policy (base seed +
  per-repetition seeds) that produced the workloads;
* **series** — named measurement series (one per technique, usually),
  each point carrying the median and MAD over k repetitions plus the raw
  per-rep values, a unit, and a comparison direction;
* optional **model fit** (Appendix A residuals per core count) and
  **profile** (per-core cycle attribution) sections.

The compare engine (:mod:`repro.perf.compare`) refuses to diff artifacts
whose ``schema`` strings differ — the version is the compatibility
contract, bump it when the shape changes.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..cpu.costmodel import TABLE4_PARAMS
from ..telemetry.artifact import current_git_sha

__all__ = [
    "BENCH_SCHEMA",
    "BenchPoint",
    "BenchSeries",
    "BenchArtifact",
    "median",
    "mad",
    "bench_filename",
]

#: Bump on any incompatible change to the artifact shape.
BENCH_SCHEMA = "scr-repro/bench-artifact/v1"

#: Directions a series can be compared in.
_DIRECTIONS = ("higher_better", "lower_better")


def median(values: Sequence[float]) -> float:
    """Median without numpy (artifacts must load dependency-free)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation — the artifact's per-point noise scale."""
    m = median(values)
    return median([abs(v - m) for v in values])


@dataclass
class BenchPoint:
    """One measured point: the median/MAD over the repetition values."""

    x: Union[int, str]
    median: float
    mad: float
    reps: List[float] = field(default_factory=list)

    @classmethod
    def from_reps(cls, x: Union[int, str], reps: Sequence[float]) -> "BenchPoint":
        return cls(x=x, median=median(reps), mad=mad(reps), reps=list(reps))

    def to_dict(self) -> dict:
        return {"x": self.x, "median": self.median, "mad": self.mad,
                "reps": self.reps}

    @classmethod
    def from_dict(cls, data: dict) -> "BenchPoint":
        return cls(x=data["x"], median=data["median"], mad=data["mad"],
                   reps=list(data.get("reps", [])))


@dataclass
class BenchSeries:
    """A named series of points sharing a unit and compare direction.

    ``noise_floor`` is an absolute tolerance in the series' unit below
    which differences are never significant (for MLFFR series this is the
    ±0.4 Mpps binary-search window).
    """

    name: str
    unit: str
    direction: str = "higher_better"
    noise_floor: float = 0.0
    points: List[BenchPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(f"direction must be one of {_DIRECTIONS}")

    def point(self, x: Union[int, str]) -> Optional[BenchPoint]:
        for p in self.points:
            if p.x == x:
                return p
        return None

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "direction": self.direction,
            "noise_floor": self.noise_floor,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "BenchSeries":
        return cls(
            name=name,
            unit=data.get("unit", ""),
            direction=data.get("direction", "higher_better"),
            noise_floor=data.get("noise_floor", 0.0),
            points=[BenchPoint.from_dict(p) for p in data.get("points", [])],
        )


def _table4_dict(programs: Optional[Sequence[str]] = None) -> dict:
    """The cost rows in effect, JSON-safe (all programs unless narrowed)."""
    names = programs if programs is not None else sorted(TABLE4_PARAMS)
    return {
        name: dataclasses.asdict(TABLE4_PARAMS[name])
        for name in names
        if name in TABLE4_PARAMS
    }


def bench_filename(name: str) -> str:
    return f"BENCH_{name}.json"


@dataclass
class BenchArtifact:
    """One suite run: provenance + series + optional analysis sections."""

    name: str
    config: dict = field(default_factory=dict)
    seed_policy: dict = field(default_factory=dict)
    series: Dict[str, BenchSeries] = field(default_factory=dict)
    #: Appendix A model fit: predicted Mpps and relative residuals per x.
    model_fit: Optional[dict] = None
    #: per-core d/c1/c2/contention cycle attribution (profiler output).
    profile: Optional[dict] = None
    git_sha: str = "unknown"
    created_utc: str = ""
    python: str = ""
    platform: str = ""
    table4_params: dict = field(default_factory=dict)
    schema: str = BENCH_SCHEMA

    @classmethod
    def create(
        cls,
        name: str,
        config: dict,
        seed_policy: dict,
        programs: Optional[Sequence[str]] = None,
    ) -> "BenchArtifact":
        """A new artifact stamped with the current environment."""
        return cls(
            name=name,
            config=config,
            seed_policy=seed_policy,
            git_sha=current_git_sha(),
            created_utc=datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(),
            python=sys.version.split()[0],
            platform=platform.platform(),
            table4_params=_table4_dict(programs),
        )

    def add_series(self, series: BenchSeries) -> BenchSeries:
        self.series[series.name] = series
        return series

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "name": self.name,
            "config": self.config,
            "seed_policy": self.seed_policy,
            "git_sha": self.git_sha,
            "created_utc": self.created_utc,
            "python": self.python,
            "platform": self.platform,
            "table4_params": self.table4_params,
            "series": {n: s.to_dict() for n, s in sorted(self.series.items())},
            "model_fit": self.model_fit,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchArtifact":
        art = cls(
            name=data.get("name", ""),
            config=data.get("config", {}),
            seed_policy=data.get("seed_policy", {}),
            git_sha=data.get("git_sha", "unknown"),
            created_utc=data.get("created_utc", ""),
            python=data.get("python", ""),
            platform=data.get("platform", ""),
            table4_params=data.get("table4_params", {}),
            model_fit=data.get("model_fit"),
            profile=data.get("profile"),
            schema=data.get("schema", ""),
        )
        for name, sdata in data.get("series", {}).items():
            art.series[name] = BenchSeries.from_dict(name, sdata)
        return art

    def save(self, directory: Union[str, Path]) -> Path:
        """Write ``BENCH_<name>.json`` under ``directory``; returns the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / bench_filename(self.name)
        with path.open("w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BenchArtifact":
        path = Path(path)
        with path.open() as fh:
            return cls.from_dict(json.load(fh))
