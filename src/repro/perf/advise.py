"""Measurement-side advisor glue: static facts + profiled workloads.

:mod:`repro.analysis.advisor` is pure — it scores techniques from a
:class:`~repro.analysis.dataflow.ProgramFacts`, a Table 4 cost row, and a
:class:`~repro.analysis.advisor.WorkloadProfile`.  This module supplies
those inputs from the running repository:

* **facts** come from analyzing each registered program's own source file
  (located via ``inspect``; the analyzer never imports the target, so this
  is the same pure-AST pass ``scr-repro lint`` runs);
* **workload profiles** come from the *same* synthesized trace the perf
  suite measures: the hot-key share and global-update fraction over the
  lowered :class:`~repro.cpu.simulator.PerfTrace`, and the busiest-core
  share at each k when the trace is steered through a real
  :class:`~repro.nic.rss.RssIndirection` with the program's RSS hash —
  exactly what :class:`~repro.parallel.sharded.ShardedRssEngine` does;
* **cost rows** come from :data:`~repro.cpu.costmodel.TABLE4_PARAMS`, or
  from the ``table4_params`` block a ``BENCH_*.json`` artifact embeds
  (``scr-repro advise --bench``), so advice can track a fresh profile.

The ``advisor_validation`` suite (:mod:`repro.perf.suite`) closes the
loop: it measures the MLFFR of every eligible technique for every
registered program and gates that the advisor's predicted winner agrees
with the measurement.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.advisor import (
    Advice,
    WorkloadProfile,
    advise_program,
    eligible_techniques,
)
from ..analysis.dataflow import FACTS_SCHEMA, ProgramFacts, analyze_path
from ..cpu.costmodel import TABLE4_PARAMS, CostParams
from ..cpu.simulator import PerfTrace
from ..nic.rss import RssIndirection
from ..parallel.base import hash_for_program
from ..programs.base import PacketProgram
from ..programs.registry import make_program, program_names
from ..scenario.build import StackBuilder
from ..scenario.spec import TraceSpec, packet_size_for

__all__ = [
    "REPORT_SCHEMA",
    "DEFAULT_CORES",
    "program_source",
    "program_facts",
    "all_program_facts",
    "facts_report",
    "workload_profile",
    "costs_for",
    "load_bench_costs",
    "advise_programs",
    "advice_report",
    "measured_techniques",
]

REPORT_SCHEMA = "scr-repro/advice-report/v1"

#: Default prediction grid: the paper's 1..8 cores (Figure 6's x-axis).
DEFAULT_CORES: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)

#: Mirrors ``ShardedRssEngine``'s default ``indirection_size`` so predicted
#: shard placement matches what the measured engine actually does.
_INDIRECTION_SIZE = 128


# -- static facts for registered programs --------------------------------------


def program_source(name: str) -> str:
    """The source file defining registered program ``name``."""
    import inspect

    cls = type(make_program(name))
    path = inspect.getsourcefile(cls)
    if path is None:  # pragma: no cover - only for exotic import setups
        raise LookupError(f"cannot locate source for program {name!r}")
    return path


def program_facts(name: str) -> ProgramFacts:
    """Static state-access facts for one registered program, derived from
    its own source file (pure AST; the module is never imported)."""
    path = program_source(name)
    for facts in analyze_path(path):
        if facts.program_name == name:
            return facts
    raise LookupError(
        f"no class with name = {name!r} found by dataflow analysis of {path}"
    )


def all_program_facts(
    programs: Optional[Sequence[str]] = None,
) -> Dict[str, ProgramFacts]:
    """Facts for every (or the named) registered programs, by name."""
    names = list(programs) if programs else program_names()
    return {name: program_facts(name) for name in names}


def facts_report(programs: Optional[Sequence[str]] = None) -> Dict[str, object]:
    """The ``scr-repro/state-facts/v1`` document for registered programs
    (the ``advise --facts-only`` payload)."""
    facts = all_program_facts(programs)
    return {
        "schema": FACTS_SCHEMA,
        "programs": [facts[name].to_dict() for name in facts],
    }


# -- workload profiling --------------------------------------------------------


def workload_profile(
    program: PacketProgram,
    perf_trace: PerfTrace,
    cores: Sequence[int] = DEFAULT_CORES,
) -> WorkloadProfile:
    """Profile a lowered trace the way the advisor's cost model needs.

    Hot-key share and global fraction are measured over the state-touching
    records; RSS core shares steer *every* record (steering happens before
    the program looks at a packet) through the same indirection table the
    sharded engine uses.
    """
    records = perf_trace.records
    valid = [r for r in records if r.valid]
    if valid:
        counts = Counter(r.key for r in valid)
        hot = max(counts.values()) / len(valid)
        global_fraction = sum(1 for r in valid if r.touches_global) / len(valid)
        flow_count = len(counts)
    else:
        hot, global_fraction, flow_count = 0.0, 0.0, 0
    shares: Dict[int, float] = {}
    if records:
        hashes = [hash_for_program(program, r) for r in records]
        for k in sorted(set(int(c) for c in cores)):
            if k <= 1:
                continue
            table = RssIndirection(k, table_size=_INDIRECTION_SIZE)
            load = [0] * k
            for h in hashes:
                load[table.queue_of(h)] += 1
            shares[k] = max(load) / len(records)
    return WorkloadProfile(
        hot_key_share=hot,
        global_fraction=global_fraction,
        rss_core_shares=shares,
        flow_count=flow_count,
    )


# -- cost rows -----------------------------------------------------------------


def costs_for(
    name: str, table4: Optional[Mapping[str, Mapping[str, float]]] = None
) -> CostParams:
    """``name``'s cost row from ``table4`` (a BENCH artifact's embedded
    ``table4_params``) when present there, else the built-in Table 4."""
    if table4 is not None:
        row = table4.get(name)
        if row is not None:
            return CostParams(
                t=float(row["t"]), c2=float(row["c2"]),
                d=float(row["d"]), c1=float(row["c1"]),
            )
    try:
        return TABLE4_PARAMS[name]
    except KeyError:
        raise KeyError(
            f"no Table 4 cost parameters for program {name!r}"
        ) from None


def load_bench_costs(path: str) -> Dict[str, Dict[str, float]]:
    """The ``table4_params`` block of a ``BENCH_*.json`` artifact."""
    from .artifact import BenchArtifact

    table4 = BenchArtifact.load(path).table4_params
    if not table4:
        raise ValueError(
            f"{path} embeds no table4_params block; re-run the suite with "
            "a current repro.perf to get cost provenance"
        )
    return table4


# -- the advise entry point ----------------------------------------------------


def advise_programs(
    programs: Optional[Sequence[str]] = None,
    *,
    workload: str = "univ_dc",
    num_flows: int = 40,
    max_packets: int = 1500,
    seed: int = 7,
    cores: Sequence[int] = DEFAULT_CORES,
    table4: Optional[Mapping[str, Mapping[str, float]]] = None,
    builder: Optional[StackBuilder] = None,
) -> List[Advice]:
    """Advice for every (or the named) registered programs.

    Each program is profiled against its *own* lowering of the shared
    workload spec (same synthesis conventions as the perf suite: per-
    program packet size and direction), so the advice is exactly what the
    ``advisor_validation`` suite checks against measurement.
    """
    names = list(programs) if programs else program_names()
    known = set(program_names())
    for name in names:
        if name not in known:
            raise ValueError(
                f"unknown program {name!r}; known: {', '.join(sorted(known))}"
            )
    builder = builder if builder is not None else StackBuilder()
    advices: List[Advice] = []
    for name in names:
        prog = make_program(name)
        spec = TraceSpec(
            workload=workload,
            num_flows=num_flows,
            max_packets=max_packets,
            seed=seed,
            bidirectional=bool(prog.bidirectional),
            packet_size=packet_size_for(name),
        )
        perf_trace = builder.perf_trace(name, spec)
        advices.append(
            advise_program(
                program_facts(name),
                costs_for(name, table4),
                workload_profile(prog, perf_trace, cores),
                cores=cores,
            )
        )
    return advices


def advice_report(
    advices: Sequence[Advice], config: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """The ``scr-repro/advice-report/v1`` document (the CLI's JSON output)."""
    return {
        "schema": REPORT_SCHEMA,
        "config": dict(config or {}),
        "programs": [a.to_dict() for a in advices],
        "recommendations": {a.program: a.recommended for a in advices},
    }


def measured_techniques(facts: ProgramFacts) -> Tuple[str, ...]:
    """The engine techniques the validation suite measures for a program:
    the advisor's eligible set, mapped onto the engine registry (the
    relaxed engine degenerates to strict SCR for non-commutative state, so
    measuring it twice would be the same number)."""
    out: List[str] = []
    for technique in eligible_techniques(facts):
        if technique == "relaxed_scr" and not facts.all_commutative:
            continue
        out.append(technique)
    return tuple(out)
