"""The curated perf suite: the runs whose numbers must not silently move.

Ten suites, each writing one ``BENCH_<name>.json`` artifact:

* ``fig6_scaling``   — the Figure 6 main-result panel (ddos @ caida, all
  four techniques vs cores), plus the SCR series' Appendix A residuals
  and a per-core cycle-attribution profile at the top SCR point;
* ``engine_mlffr``   — per-technique MLFFR across three programs at a
  fixed core count (the per-engine throughput floor);
* ``tail_latency``   — per-packet sojourn percentiles at MLFFR for SCR
  vs shared state;
* ``fig11_model_fit``— measured SCR throughput vs the analytic model,
  with the absolute residual as a gateable series;
* ``faults_recovery``— MLFFR under the chaos fault regime (injected
  drops + recovery) vs the drop-rate sweep;
* ``obs_overhead``   — span tracing's throughput cost: a zero-tolerance
  gate that the traced MLFFR equals the untraced MLFFR exactly, plus the
  deterministic sampled-span volume;
* ``hostwall``       — packets per host wall-second per stack stage
  (synthesis, lowering, simulation, the full MLFFR search) via
  ``repro.hostprof``.  A suite measuring *host* time: values are
  machine-dependent, so its baseline lives apart and is gated with the
  loose wall-noise policy in docs/PROFILING.md;
* ``hotpath``        — the columnar hot path vs the scalar oracle on the
  same run: per-stage host wall throughput for both modes plus the
  ``speedup`` ratio (docs/HOTPATH.md).  Host time like ``hostwall``, so
  its baseline also lives in ``benchmarks/baselines-hostwall/`` under
  the loose wall-noise gate;
* ``advisor_validation`` — the scradvisor loop closed: for every
  registered program, measure each eligible technique's MLFFR and gate
  that the advisor's statically predicted winner (``scr-repro advise``)
  is measurement-optimal (docs/ADVISOR.md);
* ``multitenant``    — the hybrid placement engine vs both purebreds
  (pure SCR, pure RSS) across a 10^3→10^6 Zipf-skewed flow-count sweep
  at a fixed core count: aggregate MLFFR and p99 sojourn per technique,
  the deterministic promotion count, and a ``hybrid_wins`` gate that
  hybrid stays measurement-optimal at every flow count
  (docs/MULTITENANT.md).

Every point is the **median of k repetitions**; repetition ``i``
re-synthesizes the workload with ``seed = base_seed + i`` (engine seeds
stay fixed), so the recorded MAD measures workload-sampling noise — the
scale the compare gate's thresholds are calibrated against.  With the
same seeds and code, a repeat run reproduces every value exactly: the
simulator is deterministic.

Each suite expands its grid into frozen :class:`~repro.scenario.Scenario`
specs and runs them through one :class:`~repro.scenario.ScenarioExecutor`,
so ``jobs > 1`` fans the repetitions out over worker processes — with
artifacts bit-identical to the serial run (the executor's determinism
guarantee), which the perf-regression compare gate relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..bench.mlffr import SEARCH_TOLERANCE_PPS
from ..bench.runner import ExperimentRunner
from ..hostprof.clock import NULL_HOSTPROF, PhaseClock
from ..scenario.build import ScenarioResult
from ..scenario.executor import ScenarioExecutor
from ..scenario.spec import Scenario
from .artifact import BenchArtifact, BenchPoint, BenchSeries
from .profiler import model_residuals

__all__ = [
    "BASE_SEED",
    "SuiteParams",
    "SUITES",
    "suite_names",
    "run_suite",
    "run_all_suites",
]

#: The pinned trace-synthesis base seed — must match
#: ``benchmarks/conftest.BENCH_BASE_SEED`` (asserted by the test suite).
BASE_SEED = 7

#: ±0.4 Mpps: the MLFFR binary search stops inside this window (§4.1), so
#: throughput differences below it are quantization, not signal.
_MPPS_NOISE_FLOOR = SEARCH_TOLERANCE_PPS / 1e6

#: §4.2 in-frame history budget — matches the Figure 6/7 methodology.
_SCR_IN_FRAME = {"count_wire_overhead": False}

ALL_TECHNIQUES = ("scr", "shared", "rss", "rss++")


@dataclass(frozen=True)
class SuiteParams:
    """Knobs shared by every suite run.

    ``jobs``/``cache_dir`` control *how* a suite runs (worker processes,
    on-disk workload cache) — never *what* it measures; artifacts are
    identical for any setting.
    """

    reps: int = 3
    base_seed: int = BASE_SEED
    quick: bool = True
    jobs: int = 1
    cache_dir: Optional[str] = None
    #: host wall-clock sink threaded through the executor (disabled
    #: singleton by default; never affects measured values).
    hostprof: PhaseClock = NULL_HOSTPROF

    @property
    def max_packets(self) -> int:
        return 1500 if self.quick else 3000

    @property
    def num_flows(self) -> int:
        return 40 if self.quick else 50

    @property
    def cores(self) -> Tuple[int, ...]:
        return (1, 2, 4) if self.quick else (1, 2, 4, 7)

    @property
    def rep_seeds(self) -> List[int]:
        return [self.base_seed + i for i in range(self.reps)]

    def seed_policy(self) -> dict:
        return {
            "base_seed": self.base_seed,
            "rep_seeds": self.rep_seeds,
            "policy": (
                "repetition i re-synthesizes the workload with "
                "seed = base_seed + i; engine RNG seeds stay fixed, so a "
                "repeat run with the same code reproduces every value"
            ),
        }

    def scenario(
        self,
        program: str,
        trace: str,
        technique: str,
        cores: int,
        *,
        seed: int,
        engine_kwargs: Optional[dict] = None,
        collect_latency: bool = False,
        profile: bool = False,
        faults: Optional[object] = None,
    ) -> Scenario:
        """One suite measurement as a frozen spec."""
        return Scenario.create(
            program,
            trace,
            technique,
            cores,
            num_flows=self.num_flows,
            max_packets=self.max_packets,
            seed=seed,
            engine_kwargs=engine_kwargs,
            collect_latency=collect_latency,
            profile=profile,
            faults=faults,  # type: ignore[arg-type]
        )

    def executor(self) -> ScenarioExecutor:
        return ScenarioExecutor(jobs=self.jobs, cache_dir=self.cache_dir,
                                hostprof=self.hostprof)

    def runners(self) -> List[ExperimentRunner]:
        """Per-repetition serial runners (legacy path; the suites below
        run scenario grids through :meth:`executor` instead)."""
        base = ExperimentRunner(
            num_flows=self.num_flows,
            max_packets=self.max_packets,
            seed=self.base_seed,
        )
        return [base] + [base.clone_with_seed(s) for s in self.rep_seeds[1:]]

    def config(self, **extra) -> dict:
        cfg = {
            "reps": self.reps,
            "quick": self.quick,
            "max_packets": self.max_packets,
            "num_flows": self.num_flows,
        }
        cfg.update(extra)
        return cfg


def _mpps_series(name: str) -> BenchSeries:
    return BenchSeries(name=name, unit="mpps", direction="higher_better",
                       noise_floor=_MPPS_NOISE_FLOOR)


def _engine_kwargs(technique: str) -> Optional[dict]:
    if technique in ("scr", "relaxed_scr"):
        return dict(_SCR_IN_FRAME)
    return None


# -- suites ---------------------------------------------------------------------


def run_fig6_scaling(params: SuiteParams) -> BenchArtifact:
    """Figure 6 panel: ddos @ caida, four techniques vs cores."""
    program, trace = "ddos", "caida"
    art = BenchArtifact.create(
        "fig6_scaling",
        config=params.config(program=program, trace=trace,
                             cores=list(params.cores),
                             techniques=list(ALL_TECHNIQUES)),
        seed_policy=params.seed_policy(),
        programs=[program],
    )
    top_cores = max(params.cores)
    grid = [
        params.scenario(
            program, trace, technique, cores, seed=seed,
            engine_kwargs=_engine_kwargs(technique),
            # Cycle attribution at the top SCR point, first repetition.
            profile=(technique == "scr" and cores == top_cores
                     and seed == params.base_seed),
        )
        for technique in ALL_TECHNIQUES
        for cores in params.cores
        for seed in params.rep_seeds
    ]
    results: Iterator[ScenarioResult] = iter(params.executor().run(grid))
    for technique in ALL_TECHNIQUES:
        series = art.add_series(_mpps_series(technique))
        for cores in params.cores:
            reps = []
            for _seed in params.rep_seeds:
                res = next(results)
                reps.append(res.mlffr_mpps)
                if res.profile is not None:
                    art.profile = res.profile
            series.points.append(BenchPoint.from_reps(cores, reps))
    scr = art.series["scr"]
    art.model_fit = {
        "program": program,
        "series": "scr",
        "residuals": model_residuals(
            program, [(p.x, p.median) for p in scr.points]
        ),
    }
    return art


def run_engine_mlffr(params: SuiteParams) -> BenchArtifact:
    """Per-technique MLFFR across programs at a fixed core count."""
    trace, cores = "univ_dc", 4
    programs = ("ddos", "token_bucket", "conntrack")
    art = BenchArtifact.create(
        "engine_mlffr",
        config=params.config(programs=list(programs), trace=trace,
                             cores=cores, techniques=list(ALL_TECHNIQUES)),
        seed_policy=params.seed_policy(),
        programs=programs,
    )
    grid = [
        params.scenario(program, trace, technique, cores, seed=seed,
                        engine_kwargs=_engine_kwargs(technique))
        for technique in ALL_TECHNIQUES
        for program in programs
        for seed in params.rep_seeds
    ]
    results = iter(params.executor().run(grid))
    for technique in ALL_TECHNIQUES:
        series = art.add_series(_mpps_series(technique))
        for program in programs:
            reps = [next(results).mlffr_mpps for _ in params.rep_seeds]
            series.points.append(BenchPoint.from_reps(program, reps))
    return art


#: ~9 % per-bucket width of the log-bucketed latency histogram — the
#: resolution floor of any percentile it reports.
_LATENCY_REL_FLOOR = 0.09


def run_tail_latency(params: SuiteParams) -> BenchArtifact:
    """Sojourn-time percentiles at MLFFR: SCR vs shared state."""
    program, trace, cores = "ddos", "caida", 4
    percentiles = ("p50", "p90", "p99", "p99_9")
    techniques = ("scr", "shared")
    art = BenchArtifact.create(
        "tail_latency",
        config=params.config(program=program, trace=trace, cores=cores,
                             techniques=list(techniques)),
        seed_policy=params.seed_policy(),
        programs=[program],
    )
    grid = [
        params.scenario(program, trace, technique, cores, seed=seed,
                        engine_kwargs=_engine_kwargs(technique),
                        collect_latency=True)
        for technique in techniques
        for seed in params.rep_seeds
    ]
    results = iter(params.executor().run(grid))
    for technique in techniques:
        rep_pcts = [next(results).latency_ns or {} for _ in params.rep_seeds]
        # p99 latency is noisy by nature; floor at one histogram bucket of
        # the largest observed median so bucket-edge flips stay neutral.
        top = max((pct.get("p99_9", 0.0) for pct in rep_pcts), default=0.0)
        series = art.add_series(BenchSeries(
            name=f"{technique}_latency", unit="ns", direction="lower_better",
            noise_floor=top * _LATENCY_REL_FLOOR,
        ))
        for key in percentiles:
            reps = [pct.get(key, 0.0) for pct in rep_pcts]
            series.points.append(BenchPoint.from_reps(key, reps))
    return art


def run_fig11_model_fit(params: SuiteParams) -> BenchArtifact:
    """Measured SCR throughput vs the Appendix A analytic prediction."""
    program, trace = "token_bucket", "caida"
    art = BenchArtifact.create(
        "fig11_model_fit",
        config=params.config(program=program, trace=trace,
                             cores=list(params.cores)),
        seed_policy=params.seed_policy(),
        programs=[program],
    )
    grid = [
        params.scenario(program, trace, "scr", cores, seed=seed,
                        engine_kwargs=dict(_SCR_IN_FRAME))
        for cores in params.cores
        for seed in params.rep_seeds
    ]
    results = iter(params.executor().run(grid))
    measured = art.add_series(_mpps_series("scr"))
    for cores in params.cores:
        reps = [next(results).mlffr_mpps for _ in params.rep_seeds]
        measured.points.append(BenchPoint.from_reps(cores, reps))
    residuals = model_residuals(
        program, [(p.x, p.median) for p in measured.points]
    )
    art.model_fit = {"program": program, "series": "scr",
                     "residuals": residuals}
    # Gateable view of model drift: |residual| per core count.  Within the
    # MLFFR search window the measurement sits up to ~5 % above analytic
    # capacity, so drift below that is methodology, not regression.
    drift = art.add_series(BenchSeries(
        name="abs_model_residual", unit="fraction",
        direction="lower_better", noise_floor=0.05,
    ))
    for cores_str, row in residuals.items():
        drift.points.append(BenchPoint.from_reps(
            int(cores_str), [abs(row["residual"])]
        ))
    return art


#: Injected wire→ring drop rates for the fault-tolerance suite.  The top
#: rate matches Figure 10b's harshest injected-loss point.
_FAULT_DROP_RATES = (0.0, 0.005, 0.01, 0.02)


def run_faults_recovery(params: SuiteParams) -> BenchArtifact:
    """SCR MLFFR and recovery cost as the injected drop rate rises.

    One program (ddos @ univ_dc, 4 cores) swept over drop rates; the
    ``mpps`` series gates throughput under faults, ``resyncs_at_mlffr``
    gates how much recovery work the reported rate absorbed (a change
    means the gap-recovery cost model moved).
    """
    from ..faults.spec import FaultSpec

    program, trace, cores = "ddos", "univ_dc", 4
    art = BenchArtifact.create(
        "faults_recovery",
        config=params.config(program=program, trace=trace, cores=cores,
                             drop_rates=list(_FAULT_DROP_RATES)),
        seed_policy=params.seed_policy(),
        programs=[program],
    )
    grid = [
        params.scenario(
            program, trace, "scr", cores, seed=seed,
            engine_kwargs=_engine_kwargs("scr"),
            faults=(None if rate == 0.0
                    else FaultSpec.create(seed=params.base_seed, drop_rate=rate)),
        )
        for rate in _FAULT_DROP_RATES
        for seed in params.rep_seeds
    ]
    results = iter(params.executor().run(grid))
    mpps = art.add_series(_mpps_series("mpps"))
    resyncs = art.add_series(BenchSeries(
        name="resyncs_at_mlffr", unit="count", direction="lower_better",
    ))
    for rate in _FAULT_DROP_RATES:
        rate_key = f"{rate:g}"
        mpps_reps, resync_reps = [], []
        for _seed in params.rep_seeds:
            res = next(results)
            mpps_reps.append(res.mlffr_mpps)
            stats = res.fault_stats or {}
            resync_reps.append(float(stats.get("resyncs", 0)))
        mpps.points.append(BenchPoint.from_reps(rate_key, mpps_reps))
        resyncs.points.append(BenchPoint.from_reps(rate_key, resync_reps))
    return art


#: Sampling rate the traced obs_overhead twin runs at (~1 in 20 packets).
_TRACE_SAMPLE_RATE = 0.05


def run_obs_overhead(params: SuiteParams) -> BenchArtifact:
    """Span tracing must be observational: the traced MLFFR equals the
    untraced MLFFR *exactly* (the simulator's clock never moves for a
    span), so ``traced_delta_mpps`` gates at zero tolerance — any nonzero
    delta means instrumentation leaked into the cost model.  The
    ``untraced_mpps`` series doubles as a plain perf gate on the same
    grid, and ``span_events`` pins the deterministic sample volume.
    """
    from ..obs import SpanEmitter, SpanSampler
    from ..scenario.build import StackBuilder, run_scenario
    from ..telemetry.artifact import Telemetry

    program, trace, technique = "ddos", "univ_dc", "scr"
    art = BenchArtifact.create(
        "obs_overhead",
        config=params.config(program=program, trace=trace,
                             technique=technique, cores=list(params.cores),
                             trace_sample=_TRACE_SAMPLE_RATE),
        seed_policy=params.seed_policy(),
        programs=[program],
    )
    grid = [
        params.scenario(program, trace, technique, cores, seed=seed,
                        engine_kwargs=_engine_kwargs(technique))
        for cores in params.cores
        for seed in params.rep_seeds
    ]
    results = iter(params.executor().run(grid))
    untraced = art.add_series(_mpps_series("untraced_mpps"))
    base_mpps: Dict[int, float] = {}
    for cores in params.cores:
        reps = []
        for seed in params.rep_seeds:
            res = next(results)
            reps.append(res.mlffr_mpps)
            if seed == params.base_seed:
                base_mpps[cores] = res.mlffr_mpps
        untraced.points.append(BenchPoint.from_reps(cores, reps))

    # Traced twins: the identical base-seed scenarios, spans enabled,
    # run in-process (span rings never cross workers by design).
    delta = art.add_series(BenchSeries(
        name="traced_delta_mpps", unit="mpps", direction="lower_better",
        noise_floor=0.0,
    ))
    span_counts = art.add_series(BenchSeries(
        name="span_events", unit="count", direction="higher_better",
        noise_floor=0.0,
    ))
    builder = StackBuilder()
    for cores in params.cores:
        tele = Telemetry()
        tele.spans = SpanEmitter(
            tele.tracer, SpanSampler(params.base_seed, _TRACE_SAMPLE_RATE)
        )
        scenario = params.scenario(program, trace, technique, cores,
                                   seed=params.base_seed,
                                   engine_kwargs=_engine_kwargs(technique))
        res = run_scenario(scenario, builder=builder, telemetry=tele)
        delta.points.append(BenchPoint.from_reps(
            cores, [res.mlffr_mpps - base_mpps[cores]]
        ))
        emitted = sum(count for kind, count in tele.tracer.type_counts.items()
                      if kind.startswith("span."))
        span_counts.points.append(BenchPoint.from_reps(cores, [float(emitted)]))
    return art


def run_hostwall(params: SuiteParams) -> BenchArtifact:
    """Packets per host wall-second for each stack stage (repro.hostprof).

    Each repetition runs one full MLFFR point with an enabled PhaseClock
    and derives stage walls from the phase tree: ``synthesize`` and
    ``lower`` process the trace once, ``simulate``/``mlffr`` process
    ``iterations x max_packets`` offered packets across the search's
    probes.  ``wall_kpps`` is absolute host throughput (machine-
    dependent: gate only with the loose policy in docs/PROFILING.md);
    ``wall_share`` is each stage's fraction of the scenario's total wall
    — roughly machine-portable, with a wide 0.15 noise floor.

    Simulated results are untouched by profiling (the determinism tests
    pin this), so this suite never perturbs the other six.
    """
    from ..hostprof.clock import PATH_SEP
    from ..scenario.build import StackBuilder, run_scenario

    program, trace, technique, cores = "ddos", "univ_dc", "scr", 4
    stage_paths = {
        "synthesize": PATH_SEP.join(("scenario.run", "trace.synthesize")),
        "lower": PATH_SEP.join(("scenario.run", "perf.lower")),
        "simulate": PATH_SEP.join(("scenario.run", "mlffr.search", "sim.run")),
        "mlffr": PATH_SEP.join(("scenario.run", "mlffr.search")),
    }
    stages = list(stage_paths)
    art = BenchArtifact.create(
        "hostwall",
        config=params.config(program=program, trace=trace,
                             technique=technique, cores=cores,
                             stages=stages,
                             note="host wall time; values are "
                                  "machine-dependent by design"),
        seed_policy=params.seed_policy(),
        programs=[program],
    )
    kpps_reps: Dict[str, List[float]] = {s: [] for s in stages}
    share_reps: Dict[str, List[float]] = {s: [] for s in stages}
    for seed in params.rep_seeds:
        clock = PhaseClock(enabled=True)
        # No disk cache: every repetition measures real synthesis/lowering.
        builder = StackBuilder(hostprof=clock)
        scenario = params.scenario(program, trace, technique, cores,
                                   seed=seed,
                                   engine_kwargs=_engine_kwargs(technique))
        res = run_scenario(scenario, builder=builder)
        snap = clock.snapshot()
        total_ns = max(snap["scenario.run"]["total_ns"], 1)
        probe_packets = res.iterations * params.max_packets
        for stage, path in stage_paths.items():
            wall_ns = max(snap.get(path, {}).get("total_ns", 0), 1)
            packets = (probe_packets if stage in ("simulate", "mlffr")
                       else params.max_packets)
            kpps_reps[stage].append(packets / (wall_ns / 1e9) / 1e3)
            share_reps[stage].append(wall_ns / total_ns)
    kpps = art.add_series(BenchSeries(
        name="wall_kpps", unit="kpps", direction="higher_better"))
    share = art.add_series(BenchSeries(
        name="wall_share", unit="fraction", direction="lower_better",
        noise_floor=0.15))
    for stage in stages:
        kpps.points.append(BenchPoint.from_reps(stage, kpps_reps[stage]))
        share.points.append(BenchPoint.from_reps(stage, share_reps[stage]))
    return art


#: Inner simulate() repetitions per timed hotpath measurement — smooths
#: scheduler jitter on the sub-10 ms columnar runs.
_HOTPATH_SIM_INNER = 3

#: Fixed trace length for the hotpath suite (independent of ``quick``):
#: long enough that per-call fixed overhead amortizes and the measured
#: ratio reflects the per-packet asymptote the acceptance floor gates.
_HOTPATH_PACKETS = 6000


def run_hotpath(params: SuiteParams) -> BenchArtifact:
    """Columnar hot path vs the scalar oracle: host wall throughput.

    One underload SCR run (ddos @ univ_dc, 4 cores — rings never back
    up, so the columnar driver commits rather than falling back), timed
    per stage and per mode on the *same* synthesized workload:

    * ``scalar_kpps`` / ``columnar_kpps`` — packets per host wall-second
      through packet lowering (``PerfTrace.from_trace``) and the
      fixed-rate ``simulate`` call.  Host time: machine-dependent, gated
      only with the loose wall-noise policy (docs/PROFILING.md);
    * ``speedup`` — scalar wall / columnar wall per stage.  A ratio of
      walls on one machine, so roughly machine-portable; the acceptance
      floor for the columnar path (docs/HOTPATH.md) gates here.

    Parity is not measured here — the hotpath test suite pins it
    bit-for-bit; this suite only watches the speed stay won.
    """
    import time

    from ..cpu.simulator import PerfTrace, simulate
    from ..parallel.registry import make_engine
    from ..programs.registry import make_program
    from ..scenario.build import build_trace
    from ..scenario.spec import TraceSpec, packet_size_for

    program, trace, technique, cores = "ddos", "univ_dc", "scr", 4
    rate_pps = 2e6
    stages = ("lower", "simulate")
    art = BenchArtifact.create(
        "hotpath",
        config=params.config(program=program, trace=trace,
                             technique=technique, cores=cores,
                             rate_pps=rate_pps, stages=list(stages),
                             sim_inner=_HOTPATH_SIM_INNER,
                             hotpath_packets=_HOTPATH_PACKETS,
                             note="host wall time; values are "
                                  "machine-dependent by design"),
        seed_policy=params.seed_policy(),
        programs=[program],
    )
    prog = make_program(program)
    engine = make_engine(technique, prog, cores, **_SCR_IN_FRAME)
    walls: Dict[Tuple[str, str], List[float]] = {
        (mode, stage): [] for mode in ("scalar", "columnar") for stage in stages
    }
    packets = 0
    for rep, seed in enumerate(params.rep_seeds):
        spec = TraceSpec(trace, num_flows=params.num_flows,
                         max_packets=_HOTPATH_PACKETS, seed=seed,
                         packet_size=packet_size_for(program))
        raw = build_trace(spec)
        for mode in ("scalar", "columnar"):
            if rep == 0:
                # Warm code paths and the cached Toeplitz tables so the
                # first repetition doesn't pay one-time setup.
                simulate(PerfTrace.from_trace(raw, prog, hotpath=mode),
                         rate_pps, engine, hotpath=mode)
            t0 = time.perf_counter()
            pt = PerfTrace.from_trace(raw, prog, hotpath=mode)
            walls[(mode, "lower")].append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            for _ in range(_HOTPATH_SIM_INNER):
                simulate(pt, rate_pps, engine, hotpath=mode)
            walls[(mode, "simulate")].append(
                (time.perf_counter() - t0) / _HOTPATH_SIM_INNER)
            packets = len(pt)
    for mode in ("scalar", "columnar"):
        series = art.add_series(BenchSeries(
            name=f"{mode}_kpps", unit="kpps", direction="higher_better"))
        for stage in stages:
            series.points.append(BenchPoint.from_reps(
                stage, [packets / w / 1e3 for w in walls[(mode, stage)]]))
    speedup = art.add_series(BenchSeries(
        name="speedup", unit="x", direction="higher_better"))
    for stage in stages:
        speedup.points.append(BenchPoint.from_reps(stage, [
            s / c for s, c in zip(walls[("scalar", stage)],
                                  walls[("columnar", stage)])
        ]))
    return art


#: Measured-vs-predicted winners may differ by quantization and model
#: slack; within 5 % of the best technique the advisor is "right enough"
#: (the MLFFR search itself stops within ~5 % of analytic capacity).
_AGREEMENT_REL_TOL = 0.05


def run_advisor_validation(params: SuiteParams) -> BenchArtifact:
    """The advisor's predicted winner vs the measured one, every program.

    For each registered program, measure the MLFFR of every technique the
    advisor considers eligible (relaxed SCR only where its merged-delta
    history is sound — elsewhere it degenerates to strict SCR and would
    measure the same number twice) at the top core count, then gate that
    the technique the advisor recommends is measurement-optimal within
    :data:`_AGREEMENT_REL_TOL`.  The ``agreement`` series is the gate: a
    point dropping from 1 to 0 means a code change broke either the
    static classification, the analytic cost model, or an engine.
    """
    from ..programs.registry import program_names
    from .advise import advise_programs, measured_techniques

    trace = "univ_dc"
    programs = tuple(program_names())
    cores = max(params.cores)
    advices = {
        a.program: a
        for a in advise_programs(
            programs,
            workload=trace,
            num_flows=params.num_flows,
            max_packets=params.max_packets,
            seed=params.base_seed,
            cores=params.cores,
        )
    }
    techniques = {p: measured_techniques(advices[p].facts) for p in programs}
    art = BenchArtifact.create(
        "advisor_validation",
        config=params.config(
            trace=trace,
            cores=cores,
            agreement_rel_tol=_AGREEMENT_REL_TOL,
            predicted={p: advices[p].recommended for p in programs},
            measured_techniques={p: list(techniques[p]) for p in programs},
        ),
        seed_policy=params.seed_policy(),
        programs=programs,
    )
    grid = [
        params.scenario(program, trace, technique, cores, seed=seed,
                        engine_kwargs=_engine_kwargs(technique))
        for program in programs
        for technique in techniques[program]
        for seed in params.rep_seeds
    ]
    results = iter(params.executor().run(grid))
    # Per-technique Mpps series (points keyed by program), in a stable
    # presentation order; filled in grid order below.
    order = ("scr", "relaxed_scr", "rss", "shared")
    mpps = {t: _mpps_series(t) for t in order}
    measured: Dict[str, Dict[str, float]] = {}
    for program in programs:
        measured[program] = {}
        for technique in techniques[program]:
            reps = [next(results).mlffr_mpps for _ in params.rep_seeds]
            point = BenchPoint.from_reps(program, reps)
            mpps[technique].points.append(point)
            measured[program][technique] = point.median
    for t in order:
        if mpps[t].points:
            art.add_series(mpps[t])
    agreement = art.add_series(BenchSeries(
        name="agreement", unit="bool", direction="higher_better",
        noise_floor=0.0,
    ))
    for program in programs:
        meds = measured[program]
        best = max(meds.values())
        recommended = advices[program].recommended
        agrees = meds[recommended] >= (
            best * (1 - _AGREEMENT_REL_TOL) - _MPPS_NOISE_FLOOR
        )
        agreement.points.append(BenchPoint.from_reps(program, [float(agrees)]))
    return art


#: Multitenant suite operating point.  The grid is pinned (independent
#: of ``quick``, like the hotpath trace length): the hybrid-vs-purebred
#: claim is about flow-count *scaling*, so the full 10^3→10^6 span is
#: the measurement — trimming it in quick mode would gut the committed
#: baseline's acceptance point (>= 10^5 flows).
_MULTITENANT_FLOWS = (1_000, 10_000, 100_000, 1_000_000)

#: Eight cores: the operating point where per-flow placement pays.  At
#: small k the (k-1)·c2 fast-forward that pure SCR wastes on mice is of
#: the same order as the hybrid's classifier probe, so the comparison
#: would gate on a quantization-level margin; at k=8 the saved history
#: replay dominates and the hybrid's win clears the MLFFR noise floor
#: at every flow count.
_MULTITENANT_CORES = 8

#: Trace window per measurement (matches the quick suites' 1500: the
#: classifier thresholds below are calibrated against this window).
_MULTITENANT_PACKETS = 1500

_MULTITENANT_TECHNIQUES = ("hybrid", "scr", "rss")


def run_multitenant(params: SuiteParams) -> BenchArtifact:
    """Hybrid elephant/mice placement vs both purebreds, Zipf flows.

    One program (ddos) on the ``zipf`` workload (heavy-tailed flow
    sizes, per-flow packet budget so the elephant share survives any
    flow count) swept over nominal flow counts 10^3→10^6 at eight
    cores.  Three techniques on identical traces:

    * ``hybrid`` — the placement engine: SCR for classifier-promoted
      elephants, seeded-FNV RSS sharding for mice, migration costs
      charged to the packets that trigger them;
    * ``scr``    — pure replication (every packet pays the history
      fast-forward whether its flow is hot or not);
    * ``rss``    — pure sharding (elephants pin cores; the Toeplitz
      hash's low-entropy behavior on the synthetic address space is
      part of what the hybrid's mice hash fixes).

    Gates: per-technique ``mpps`` and ``*_p99_ns`` series, the
    deterministic ``hybrid_promotions`` count (same seed ⇒ same
    placement decisions, zero tolerance), and ``hybrid_wins`` — 1.0
    wherever the hybrid's median MLFFR strictly beats both purebreds'.
    """
    from ..placement import PlacementSpec

    program, trace = "ddos", "zipf"
    # Calibrated to the 1500-packet window of the zipf workload: the
    # in-window elephants hold >= 5 % shares at every flow count, so a
    # 24-packet estimate separates them from the mice tail, and twelve
    # sequencer slots cover the deepest observed elephant set (a full
    # elephant table strands a hot flow on one RSS core, which is the
    # pure-sharding pathology this engine exists to avoid).
    placement = PlacementSpec(
        max_elephants=12, promote_threshold=24, demote_threshold=8
    )
    art = BenchArtifact.create(
        "multitenant",
        config=params.config(
            program=program, trace=trace, cores=_MULTITENANT_CORES,
            num_flows=list(_MULTITENANT_FLOWS),
            max_packets=_MULTITENANT_PACKETS,
            techniques=list(_MULTITENANT_TECHNIQUES),
            placement=placement.canonical_dict(),
        ),
        seed_policy=params.seed_policy(),
        programs=[program],
    )
    grid = [
        Scenario.create(
            program, trace, technique, _MULTITENANT_CORES,
            num_flows=flows, max_packets=_MULTITENANT_PACKETS, seed=seed,
            engine_kwargs=_engine_kwargs(technique),
            collect_latency=True,
            placement=placement if technique == "hybrid" else None,
        )
        for technique in _MULTITENANT_TECHNIQUES
        for flows in _MULTITENANT_FLOWS
        for seed in params.rep_seeds
    ]
    results = iter(params.executor().run(grid))
    medians: Dict[str, Dict[int, float]] = {}
    for technique in _MULTITENANT_TECHNIQUES:
        medians[technique] = {}
        mpps = art.add_series(_mpps_series(technique))
        p99_rows: List[Tuple[int, List[float]]] = []
        promo_rows: List[Tuple[int, List[float]]] = []
        for flows in _MULTITENANT_FLOWS:
            mpps_reps: List[float] = []
            p99_reps: List[float] = []
            promo_reps: List[float] = []
            for _seed in params.rep_seeds:
                res = next(results)
                mpps_reps.append(res.mlffr_mpps)
                p99_reps.append((res.latency_ns or {}).get("p99", 0.0))
                if technique == "hybrid":
                    stats = res.placement_stats or {}
                    promo_reps.append(float(stats.get("promotions", 0)))  # type: ignore[call-overload]
            point = BenchPoint.from_reps(flows, mpps_reps)
            mpps.points.append(point)
            medians[technique][flows] = point.median
            p99_rows.append((flows, p99_reps))
            if technique == "hybrid":
                promo_rows.append((flows, promo_reps))
        # Same floor policy as tail_latency: one histogram bucket of the
        # largest observed p99, so bucket-edge flips stay neutral.
        top = max((max(reps) for _, reps in p99_rows if reps), default=0.0)
        p99 = art.add_series(BenchSeries(
            name=f"{technique}_p99_ns", unit="ns", direction="lower_better",
            noise_floor=top * _LATENCY_REL_FLOOR,
        ))
        for flows, reps in p99_rows:
            p99.points.append(BenchPoint.from_reps(flows, reps))
        if technique == "hybrid":
            # Classifier determinism gate: promotions at the reported
            # rate are a pure function of (seed, packet order), so any
            # drift here means the placement pipeline changed.
            promos = art.add_series(BenchSeries(
                name="hybrid_promotions", unit="count",
                direction="higher_better", noise_floor=0.0,
            ))
            for flows, reps in promo_rows:
                promos.points.append(BenchPoint.from_reps(flows, reps))
    wins = art.add_series(BenchSeries(
        name="hybrid_wins", unit="bool", direction="higher_better",
        noise_floor=0.0,
    ))
    for flows in _MULTITENANT_FLOWS:
        h = medians["hybrid"][flows]
        wins.points.append(BenchPoint.from_reps(flows, [float(
            h > medians["scr"][flows] and h > medians["rss"][flows]
        )]))
    return art


SUITES: Dict[str, Callable[[SuiteParams], BenchArtifact]] = {
    "fig6_scaling": run_fig6_scaling,
    "engine_mlffr": run_engine_mlffr,
    "tail_latency": run_tail_latency,
    "fig11_model_fit": run_fig11_model_fit,
    "faults_recovery": run_faults_recovery,
    "obs_overhead": run_obs_overhead,
    "hostwall": run_hostwall,
    "hotpath": run_hotpath,
    "advisor_validation": run_advisor_validation,
    "multitenant": run_multitenant,
}


def suite_names() -> List[str]:
    return sorted(SUITES)


def run_suite(name: str, params: Optional[SuiteParams] = None) -> BenchArtifact:
    try:
        fn = SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown bench suite {name!r}; available: {', '.join(suite_names())}"
        ) from None
    return fn(params or SuiteParams())


def run_all_suites(
    params: Optional[SuiteParams] = None,
    names: Optional[Sequence[str]] = None,
) -> List[BenchArtifact]:
    return [run_suite(n, params) for n in (names or suite_names())]
