"""Noise-aware artifact comparison — the CI perf-regression gate.

Given an OLD (baseline) and NEW artifact, every matched point gets a
verdict.  The significance threshold per point is::

    tol = max(rel_tol * |old.median|,
              noise_mult * (old.mad + new.mad),
              series.noise_floor)

so a difference must beat all three of: a relative band, the measured
workload-sampling noise, and the series' absolute measurement floor (the
MLFFR search window for throughput, one histogram bucket for latency).
``regression``/``improvement`` follow the series' direction; everything
else is ``neutral``.  A repeat run of the same code with the same seeds
is bit-identical, so it compares clean by construction.

Structural problems — schema-version mismatch, different suite names,
series or points missing from NEW — raise :class:`CompareError` rather
than producing a verdict: a gate that silently skips data is worse than
one that fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .artifact import BENCH_SCHEMA, BenchArtifact

__all__ = [
    "CompareError",
    "PointVerdict",
    "CompareResult",
    "compare_artifacts",
    "compare_paths",
    "markdown_report",
    "REGRESSION",
    "IMPROVEMENT",
    "NEUTRAL",
]

REGRESSION = "regression"
IMPROVEMENT = "improvement"
NEUTRAL = "neutral"

#: Default relative significance band.
DEFAULT_REL_TOL = 0.05
#: Default multiplier on the summed MADs (the measured noise scale).
DEFAULT_NOISE_MULT = 3.0


class CompareError(Exception):
    """A structural problem that prevents a trustworthy comparison."""


@dataclass
class PointVerdict:
    """One matched point's outcome."""

    series: str
    x: Union[int, str]
    old: float
    new: float
    tol: float
    verdict: str
    unit: str = ""

    @property
    def delta(self) -> float:
        return self.new - self.old

    @property
    def delta_pct(self) -> float:
        if self.old == 0:
            return 0.0
        return 100.0 * self.delta / abs(self.old)


@dataclass
class CompareResult:
    """All point verdicts for one artifact pair."""

    name: str
    old_sha: str = ""
    new_sha: str = ""
    points: List[PointVerdict] = field(default_factory=list)
    #: series present in NEW but not OLD (reported, never a failure).
    new_series: List[str] = field(default_factory=list)
    #: run metadata for triage (git SHA, python, platform, created_utc) —
    #: the report shows both sides so a regression can be attributed
    #: without reopening either artifact.
    old_meta: Dict[str, str] = field(default_factory=dict)
    new_meta: Dict[str, str] = field(default_factory=dict)

    @property
    def regressions(self) -> List[PointVerdict]:
        return [p for p in self.points if p.verdict == REGRESSION]

    @property
    def improvements(self) -> List[PointVerdict]:
        return [p for p in self.points if p.verdict == IMPROVEMENT]

    @property
    def verdict(self) -> str:
        if self.regressions:
            return REGRESSION
        if self.improvements:
            return IMPROVEMENT
        return NEUTRAL


def _check_schema(art: BenchArtifact, label: str) -> None:
    if art.schema != BENCH_SCHEMA:
        raise CompareError(
            f"{label} artifact {art.name!r} has schema {art.schema!r}, "
            f"this tool understands {BENCH_SCHEMA!r}; refusing to compare "
            "across schema versions (refresh the baseline instead)"
        )


def compare_artifacts(
    old: BenchArtifact,
    new: BenchArtifact,
    rel_tol: float = DEFAULT_REL_TOL,
    noise_mult: float = DEFAULT_NOISE_MULT,
) -> CompareResult:
    """Compare two artifacts of the same suite; raises CompareError on
    schema mismatch or data missing from NEW."""
    _check_schema(old, "OLD")
    _check_schema(new, "NEW")
    if old.name != new.name:
        raise CompareError(
            f"artifact names differ: OLD is {old.name!r}, NEW is {new.name!r}"
        )
    result = CompareResult(name=old.name, old_sha=old.git_sha,
                           new_sha=new.git_sha,
                           old_meta=_run_meta(old), new_meta=_run_meta(new))
    for sname, oseries in sorted(old.series.items()):
        nseries = new.series.get(sname)
        if nseries is None:
            raise CompareError(
                f"series {sname!r} is in the OLD {old.name!r} artifact but "
                "missing from NEW — a silently dropped measurement cannot "
                "pass the gate"
            )
        floor = max(oseries.noise_floor, nseries.noise_floor)
        for opoint in oseries.points:
            npoint = nseries.point(opoint.x)
            if npoint is None:
                raise CompareError(
                    f"point x={opoint.x!r} of series {sname!r} is missing "
                    f"from NEW {new.name!r}"
                )
            tol = max(rel_tol * abs(opoint.median),
                      noise_mult * (opoint.mad + npoint.mad),
                      floor)
            delta = npoint.median - opoint.median
            if oseries.direction == "lower_better":
                delta = -delta
            if delta < -tol:
                verdict = REGRESSION
            elif delta > tol:
                verdict = IMPROVEMENT
            else:
                verdict = NEUTRAL
            result.points.append(PointVerdict(
                series=sname, x=opoint.x, old=opoint.median,
                new=npoint.median, tol=tol, verdict=verdict,
                unit=oseries.unit,
            ))
    result.new_series = sorted(set(new.series) - set(old.series))
    return result


def _run_meta(art: BenchArtifact) -> Dict[str, str]:
    """The provenance stamp a triager needs next to each verdict."""
    return {
        "git_sha": art.git_sha,
        "python": art.python,
        "platform": art.platform,
        "created_utc": art.created_utc,
    }


def _meta_line(label: str, sha: str, meta: Dict[str, str]) -> str:
    sha = (meta.get("git_sha") or sha or "unknown")[:12]
    parts = [f"**{label}**: `{sha}`"]
    if meta.get("python"):
        parts.append(f"python {meta['python']}")
    if meta.get("platform"):
        parts.append(meta["platform"])
    if meta.get("created_utc"):
        parts.append(meta["created_utc"])
    return " · ".join(parts)


def _artifact_files(path: Path) -> List[Path]:
    return sorted(path.glob("BENCH_*.json"))


def compare_paths(
    old_path: Union[str, Path],
    new_path: Union[str, Path],
    rel_tol: float = DEFAULT_REL_TOL,
    noise_mult: float = DEFAULT_NOISE_MULT,
) -> Tuple[List[CompareResult], List[str]]:
    """Compare two ``BENCH_*.json`` files, or two directories of them.

    For directories, every artifact in OLD must have a same-named file in
    NEW; artifacts only in NEW are returned as the second element (new
    coverage is fine, lost coverage is a :class:`CompareError`).
    """
    old_path, new_path = Path(old_path), Path(new_path)
    for label, path in (("OLD", old_path), ("NEW", new_path)):
        if not path.exists():
            raise CompareError(f"{label} path {str(path)!r} does not exist")
    if old_path.is_dir() != new_path.is_dir():
        raise CompareError(
            "OLD and NEW must both be files or both be directories"
        )
    if not old_path.is_dir():
        return [compare_artifacts(BenchArtifact.load(old_path),
                                  BenchArtifact.load(new_path),
                                  rel_tol=rel_tol, noise_mult=noise_mult)], []
    old_files = _artifact_files(old_path)
    if not old_files:
        raise CompareError(
            f"no BENCH_*.json artifacts under OLD directory {str(old_path)!r}"
        )
    results = []
    for ofile in old_files:
        nfile = new_path / ofile.name
        if not nfile.exists():
            raise CompareError(
                f"baseline artifact {ofile.name} has no counterpart under "
                f"NEW directory {str(new_path)!r}"
            )
        results.append(compare_artifacts(
            BenchArtifact.load(ofile), BenchArtifact.load(nfile),
            rel_tol=rel_tol, noise_mult=noise_mult,
        ))
    extra = sorted(f.name for f in _artifact_files(new_path)
                   if not (old_path / f.name).exists())
    return results, extra


_MARK = {REGRESSION: "✗", IMPROVEMENT: "✓", NEUTRAL: "·"}


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def markdown_report(
    results: List[CompareResult],
    extra_artifacts: Optional[List[str]] = None,
) -> str:
    """A markdown compare report (what the CI job posts / archives)."""
    lines: List[str] = ["# Bench compare"]
    worst = NEUTRAL
    for res in results:
        if res.verdict == REGRESSION:
            worst = REGRESSION
        elif res.verdict == IMPROVEMENT and worst == NEUTRAL:
            worst = IMPROVEMENT
    total_reg = sum(len(r.regressions) for r in results)
    total_imp = sum(len(r.improvements) for r in results)
    total = sum(len(r.points) for r in results)
    lines.append("")
    lines.append(
        f"**Overall: {worst.upper()}** — {total} points compared, "
        f"{total_reg} regressed, {total_imp} improved."
    )
    for res in results:
        lines.append("")
        lines.append(f"## {res.name} — {res.verdict}")
        lines.append("")
        lines.append(_meta_line("OLD", res.old_sha, res.old_meta))
        lines.append(_meta_line("NEW", res.new_sha, res.new_meta))
        lines.append("")
        lines.append("| series | x | old | new | Δ% | tol | verdict |")
        lines.append("|---|---|---|---|---|---|---|")
        for p in res.points:
            lines.append(
                f"| {p.series} | {p.x} | {_fmt(p.old)} | {_fmt(p.new)} "
                f"| {p.delta_pct:+.1f}% | ±{_fmt(p.tol)} "
                f"| {_MARK[p.verdict]} {p.verdict} |"
            )
        if res.new_series:
            lines.append("")
            lines.append(
                "new series (no baseline): " + ", ".join(res.new_series)
            )
    if extra_artifacts:
        lines.append("")
        lines.append(
            "new artifacts (no baseline): " + ", ".join(extra_artifacts)
        )
    lines.append("")
    return "\n".join(lines)
