"""Performance-regression observability: bench artifacts, compare gate,
cycle-attribution profiler.

The measure-then-validate loop (Appendix A / Figure 11) as infrastructure:
``repro.perf.suite`` runs the curated benchmark suite and writes
schema-versioned ``BENCH_<name>.json`` artifacts (median + MAD over
seeded repetitions, full provenance); ``repro.perf.compare`` diffs two
artifacts with noise-aware thresholds so CI can gate on regressions;
``repro.perf.profiler`` attributes every busy nanosecond to the
``d``/``c1``/``c2``/contention components and reports residuals against
the analytic throughput model.  See ``docs/BENCHMARKS.md``.
"""

from .artifact import (
    BENCH_SCHEMA,
    BenchArtifact,
    BenchPoint,
    BenchSeries,
    bench_filename,
    mad,
    median,
)
from .compare import (
    IMPROVEMENT,
    NEUTRAL,
    REGRESSION,
    CompareError,
    CompareResult,
    PointVerdict,
    compare_artifacts,
    compare_paths,
    markdown_report,
)
from .profiler import (
    CoreAttribution,
    RunAttribution,
    attribute_result,
    attribution_from_snapshot,
    model_residuals,
)
from .suite import (
    BASE_SEED,
    SUITES,
    SuiteParams,
    run_all_suites,
    run_suite,
    suite_names,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchArtifact",
    "BenchPoint",
    "BenchSeries",
    "bench_filename",
    "median",
    "mad",
    "CompareError",
    "CompareResult",
    "PointVerdict",
    "compare_artifacts",
    "compare_paths",
    "markdown_report",
    "REGRESSION",
    "IMPROVEMENT",
    "NEUTRAL",
    "CoreAttribution",
    "RunAttribution",
    "attribute_result",
    "attribution_from_snapshot",
    "model_residuals",
    "BASE_SEED",
    "SUITES",
    "SuiteParams",
    "run_suite",
    "run_all_suites",
    "suite_names",
]
