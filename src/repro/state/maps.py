"""State maps: the shared / per-core map abstractions programs run against.

The same program code runs under every scaling technique; what changes is the
map it is handed:

* :class:`StateMap` — plain dictionary semantics over the cuckoo table.
* :class:`SharedStateMap` — one map shared by all cores; counts cross-core
  accesses so the performance layer can charge cache-line transfer penalties.
* :class:`PerCoreStateMap` — BPF ``PERCPU``-style array of private replicas
  (one per core), the data structure SCR-aware programs use (App. C step 1).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from .cuckoo import CuckooHashTable

__all__ = ["StateMap", "SharedStateMap", "PerCoreStateMap"]


class StateMap:
    """Key-value state with dict-like semantics, backed by a cuckoo table."""

    def __init__(self, capacity: int = 4096, allow_grow: bool = True) -> None:
        self._table = CuckooHashTable(capacity=capacity, allow_grow=allow_grow)

    def lookup(self, key: Hashable) -> Optional[Any]:
        return self._table.lookup(key)

    def update(self, key: Hashable, value: Any) -> None:
        self._table.insert(key, value)

    def delete(self, key: Hashable) -> bool:
        return self._table.delete(key)

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._table

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        return self._table.items()

    def snapshot(self) -> Dict[Hashable, Any]:
        """A plain-dict copy, used by tests to compare replica states."""
        return dict(self._table.items())

    @property
    def grow_events(self) -> int:
        """How many times the backing cuckoo table doubled (shard sizing)."""
        return self._table.grow_events

    def stats_snapshot(self) -> Dict[str, int]:
        """Sizing observability beside :meth:`snapshot` (which stays a pure
        contents copy so replica-equality comparisons are unaffected)."""
        return {
            "entries": len(self._table),
            "bucket_count": self._table.bucket_count,
            "grow_events": self._table.grow_events,
        }

    def clear(self) -> None:
        self._table.clear()


class SharedStateMap(StateMap):
    """A single map accessed by every core.

    Functionally identical to :class:`StateMap`; additionally records, per
    key, which core last wrote it and how many times the writing core changed
    — the cache-line "bounce" count the performance layer turns into stall
    cycles (§4.2, Figure 8).
    """

    def __init__(self, capacity: int = 4096, allow_grow: bool = True) -> None:
        super().__init__(capacity=capacity, allow_grow=allow_grow)
        self._last_writer: Dict[Hashable, int] = {}
        self.bounce_count = 0
        self.access_count = 0

    def update_from_core(self, core_id: int, key: Hashable, value: Any) -> bool:
        """Write ``key`` from ``core_id``; returns True when the line bounced."""
        self.access_count += 1
        bounced = self._last_writer.get(key, core_id) != core_id
        if bounced:
            self.bounce_count += 1
        self._last_writer[key] = core_id
        self.update(key, value)
        return bounced

    def lookup_from_core(self, core_id: int, key: Hashable) -> Optional[Any]:
        """Read ``key`` from ``core_id``; bounces count against reads too."""
        self.access_count += 1
        if self._last_writer.get(key, core_id) != core_id:
            self.bounce_count += 1
        return self.lookup(key)

    def note_writer(self, core_id: int, key: Hashable) -> None:
        """Record that ``core_id`` last dirtied ``key``'s cache line.

        For callers that perform the update through the plain map API
        (e.g. running an unmodified program) but still want bounce
        accounting.
        """
        self._last_writer[key] = core_id

    @property
    def bounce_ratio(self) -> float:
        if self.access_count == 0:
            return 0.0
        return self.bounce_count / self.access_count


class PerCoreStateMap:
    """An array of private state replicas, one per core (App. C step 1).

    Each core only ever touches its own replica, so there is no sharing to
    account for.  ``replicas_consistent`` is the correctness oracle used by
    the SCR tests: after a run, every replica must hold identical contents.
    """

    def __init__(self, num_cores: int, capacity: int = 4096, allow_grow: bool = True) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self._replicas: List[StateMap] = [
            StateMap(capacity=capacity, allow_grow=allow_grow) for _ in range(num_cores)
        ]

    def replica(self, core_id: int) -> StateMap:
        return self._replicas[core_id]

    def lookup(self, core_id: int, key: Hashable) -> Optional[Any]:
        return self._replicas[core_id].lookup(key)

    def update(self, core_id: int, key: Hashable, value: Any) -> None:
        self._replicas[core_id].update(key, value)

    def snapshots(self) -> List[Dict[Hashable, Any]]:
        return [replica.snapshot() for replica in self._replicas]

    def replicas_consistent(self) -> bool:
        """True when every core's replica holds identical contents."""
        snaps = self.snapshots()
        return all(s == snaps[0] for s in snaps[1:])

    @property
    def grow_events(self) -> int:
        """Total grow events across all replicas (sizing observability)."""
        return sum(r.grow_events for r in self._replicas)
