"""State substrate: cuckoo hash table and shared / per-core / sharded maps."""

from .cuckoo import CuckooHashTable, CuckooInsertError
from .maps import PerCoreStateMap, SharedStateMap, StateMap
from .sharded import QUOTA_DROP_CAUSE, ShardedStateMap

__all__ = [
    "CuckooHashTable",
    "CuckooInsertError",
    "PerCoreStateMap",
    "QUOTA_DROP_CAUSE",
    "SharedStateMap",
    "ShardedStateMap",
    "StateMap",
]
