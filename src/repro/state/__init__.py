"""State substrate: cuckoo hash table and shared / per-core map wrappers."""

from .cuckoo import CuckooHashTable, CuckooInsertError
from .maps import PerCoreStateMap, SharedStateMap, StateMap

__all__ = [
    "CuckooHashTable",
    "CuckooInsertError",
    "PerCoreStateMap",
    "SharedStateMap",
    "StateMap",
]
