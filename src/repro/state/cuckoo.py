"""A cuckoo hash table.

The paper implements its programs' key-value dictionaries as a cuckoo hash
table so a lookup costs a single BPF helper call (§4.1).  This is a faithful
software model: two hash functions over fixed-size bucket arrays with
multi-slot buckets, displacement ("cuckoo") insertion with a bounded kick
chain, and optional growth when insertion fails.

The table intentionally exposes bucket geometry (``bucket_count``,
``slots_per_bucket``, ``load_factor``) so tests and benchmarks can reason
about occupancy the way a fixed-size eBPF map forces one to.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, List, Optional, Tuple

__all__ = ["CuckooHashTable", "CuckooInsertError"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a(data: bytes, seed: int) -> int:
    """64-bit FNV-1a, seeded, used for both cuckoo hash functions."""
    value = _FNV_OFFSET ^ seed
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


def _key_bytes(key: Hashable) -> bytes:
    """Stable byte representation of a key for hashing."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode()
    if isinstance(key, int):
        return key.to_bytes(16, "big", signed=True)
    # Fall back to repr for tuples/dataclasses; stable within a process run
    # for value-type keys, which is all the programs use.
    return repr(key).encode()


class CuckooInsertError(RuntimeError):
    """Raised when an insert fails and growth is disabled (table is full)."""


class CuckooHashTable:
    """Two-choice cuckoo hash with multi-slot buckets.

    Parameters
    ----------
    capacity:
        Expected maximum number of entries; sizes the bucket arrays.
    slots_per_bucket:
        Entries per bucket (4 gives >90 % achievable load factor).
    max_kicks:
        Bound on the displacement chain before declaring failure.
    allow_grow:
        When True (default) a failed insert doubles the table and rehashes,
        mirroring a control-plane map resize.  When False, a failed insert
        raises :class:`CuckooInsertError` — the eBPF-style fixed-size regime
        the paper's evaluation had to work within (§4.1).
    """

    def __init__(
        self,
        capacity: int = 1024,
        slots_per_bucket: int = 4,
        max_kicks: int = 128,
        allow_grow: bool = True,
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if slots_per_bucket < 1:
            raise ValueError("slots_per_bucket must be positive")
        self.slots_per_bucket = slots_per_bucket
        self.max_kicks = max_kicks
        self.allow_grow = allow_grow
        self._seed = seed
        self._bucket_count = self._geometry(capacity, slots_per_bucket)
        self._buckets: List[List[Tuple[Hashable, Any]]] = [
            [] for _ in range(self._bucket_count)
        ]
        self._size = 0
        # _kick_cursor makes eviction choice deterministic without an RNG.
        self._kick_cursor = 0
        #: how many times the table doubled; shard-sizing observability —
        #: a control plane that sized the map right sees 0 here.
        self.grow_events = 0

    @staticmethod
    def _geometry(capacity: int, slots: int) -> int:
        """Bucket count: next power of two fitting capacity at ~85 % load."""
        needed = max(2, int(capacity / (slots * 0.85)) + 1)
        count = 1
        while count < needed:
            count <<= 1
        return count

    # -- hashing -----------------------------------------------------------

    def _hashes(self, key: Hashable) -> Tuple[int, int]:
        data = _key_bytes(key)
        h1 = _fnv1a(data, self._seed) & (self._bucket_count - 1)
        h2 = _fnv1a(data, self._seed ^ 0x5BD1E995) & (self._bucket_count - 1)
        if h1 == h2:
            h2 = (h2 + 1) & (self._bucket_count - 1)
        return h1, h2

    # -- public API ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Hashable) -> bool:
        return self.lookup(key) is not None

    @property
    def bucket_count(self) -> int:
        return self._bucket_count

    @property
    def load_factor(self) -> float:
        return self._size / (self._bucket_count * self.slots_per_bucket)

    def lookup(self, key: Hashable) -> Optional[Any]:
        """Return the value for ``key`` or None — the single 'helper call'."""
        h1, h2 = self._hashes(key)
        for h in (h1, h2):
            for k, v in self._buckets[h]:
                if k == key:
                    return v
        return None

    def get(self, key: Hashable, default: Any = None) -> Any:
        value = self.lookup(key)
        return default if value is None else value

    def insert(self, key: Hashable, value: Any) -> None:
        """Insert or update ``key``.

        Updates overwrite in place.  New entries go to the emptier of the two
        candidate buckets; when both are full, existing entries are displaced
        along a bounded kick chain.
        """
        h1, h2 = self._hashes(key)
        for h in (h1, h2):
            bucket = self._buckets[h]
            for i, (k, _v) in enumerate(bucket):
                if k == key:
                    bucket[i] = (key, value)
                    return
        if self._place(key, value, h1, h2):
            self._size += 1
            return
        if not self.allow_grow:
            raise CuckooInsertError(f"cuckoo table full inserting {key!r}")
        self._grow()
        self.insert(key, value)

    def _place(self, key: Hashable, value: Any, h1: int, h2: int) -> bool:
        # Prefer the less-loaded bucket, like a d-left insert.
        order = (h1, h2) if len(self._buckets[h1]) <= len(self._buckets[h2]) else (h2, h1)
        for h in order:
            if len(self._buckets[h]) < self.slots_per_bucket:
                self._buckets[h].append((key, value))
                return True
        # Both full: displace along a kick chain.
        current_key, current_value, home = key, value, order[0]
        for _ in range(self.max_kicks):
            bucket = self._buckets[home]
            victim_slot = self._kick_cursor % self.slots_per_bucket
            self._kick_cursor += 1
            victim_key, victim_value = bucket[victim_slot]
            bucket[victim_slot] = (current_key, current_value)
            current_key, current_value = victim_key, victim_value
            v1, v2 = self._hashes(current_key)
            home = v2 if home == v1 else v1
            if len(self._buckets[home]) < self.slots_per_bucket:
                self._buckets[home].append((current_key, current_value))
                return True
        # Chain exhausted: undo is unnecessary because the displaced item is
        # still held in current_*; re-inserting after growth re-places it.
        self._pending = (current_key, current_value)
        return False

    def _grow(self) -> None:
        """Double the bucket array and rehash everything (plus any pending)."""
        self.grow_events += 1
        entries = list(self.items())
        pending = getattr(self, "_pending", None)
        if pending is not None:
            entries.append(pending)
            self._pending = None
        self._bucket_count *= 2
        self._buckets = [[] for _ in range(self._bucket_count)]
        self._size = 0
        for k, v in entries:
            self.insert(k, v)

    def delete(self, key: Hashable) -> bool:
        """Remove ``key``; return True when it was present."""
        h1, h2 = self._hashes(key)
        for h in (h1, h2):
            bucket = self._buckets[h]
            for i, (k, _v) in enumerate(bucket):
                if k == key:
                    bucket.pop(i)
                    self._size -= 1
                    return True
        return False

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        for bucket in self._buckets:
            for entry in bucket:
                yield entry

    def keys(self) -> Iterator[Hashable]:
        for k, _v in self.items():
            yield k

    def values(self) -> Iterator[Any]:
        for _k, v in self.items():
            yield v

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._size = 0
