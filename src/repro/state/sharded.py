"""Sharded state backend for multi-tenant, million-flow table sizing.

The paper's evaluation keeps *one* flow's state hot; a production data
plane holds state for millions of concurrent flows owned by many tenants.
:class:`ShardedStateMap` is the backing store the hybrid placement layer
(`repro.placement`, docs/MULTITENANT.md) hands to the mice path:

* **per-shard cuckoo tables** — the key space is split across ``num_shards``
  independent :class:`~repro.state.cuckoo.CuckooHashTable` instances by a
  seeded FNV-1a hash, so no single table has to grow to the full flow count
  and shard-level occupancy/grow events stay observable per shard;
* **per-tenant namespace keys** — every entry is stored under
  ``(tenant_id, key)``, so two tenants reusing the same 5-tuple can never
  read or clobber each other's state;
* **quota accounting** — each tenant may hold at most ``tenant_quota``
  entries.  Inserting a *new* key past the quota is refused (the caller
  processes the packet statelessly) and recorded under a per-tenant drop
  cause, so a noisy tenant degrades only itself and the damage is visible
  in telemetry.

Updates to existing entries always succeed — quota bounds *residency*, not
write traffic — and deletes return quota headroom to the owning tenant.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from .cuckoo import CuckooHashTable, _fnv1a, _key_bytes

__all__ = ["ShardedStateMap", "QUOTA_DROP_CAUSE"]

#: Drop-cause label used in telemetry for quota-refused inserts.
QUOTA_DROP_CAUSE = "tenant_quota_exhausted"


class ShardedStateMap:
    """Tenant-namespaced key-value state split across cuckoo shards.

    Parameters
    ----------
    num_shards:
        Independent cuckoo tables the key space is hashed across.
    capacity:
        Expected total entries across all shards; each shard is sized for
        ``capacity / num_shards`` (growth remains enabled per shard, and
        growth events are counted — a well-sized map reports zero).
    tenant_quota:
        Maximum resident entries per tenant; ``None`` disables quotas.
    seed:
        Seeds both the shard-selection hash and each shard's cuckoo hashes,
        so placement is deterministic and reproducible across runs.
    """

    def __init__(
        self,
        num_shards: int = 16,
        capacity: int = 1 << 20,
        tenant_quota: Optional[int] = None,
        seed: int = 0,
        slots_per_bucket: int = 4,
        allow_grow: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if capacity < num_shards:
            raise ValueError("capacity must be >= num_shards")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be positive (or None)")
        self.num_shards = num_shards
        self.tenant_quota = tenant_quota
        self._seed = seed
        per_shard = max(1, capacity // num_shards)
        self._shards: List[CuckooHashTable] = [
            CuckooHashTable(
                capacity=per_shard,
                slots_per_bucket=slots_per_bucket,
                allow_grow=allow_grow,
                seed=seed ^ (0x9E3779B9 * (i + 1)),
            )
            for i in range(num_shards)
        ]
        #: resident entries per tenant (quota accounting).
        self._tenant_entries: Dict[int, int] = {}
        #: quota-refused inserts per tenant (the per-tenant drop cause).
        self.quota_drops: Dict[int, int] = {}

    # -- key plumbing -------------------------------------------------------

    def shard_of(self, tenant_id: int, key: Hashable) -> int:
        """Deterministic shard index for a tenant-namespaced key."""
        data = tenant_id.to_bytes(8, "big", signed=True) + _key_bytes(key)
        return _fnv1a(data, self._seed) % self.num_shards

    @staticmethod
    def namespaced(tenant_id: int, key: Hashable) -> Tuple[int, Hashable]:
        """The stored key: tenants can never alias each other's entries."""
        return (tenant_id, key)

    # -- map API ------------------------------------------------------------

    def lookup(self, key: Hashable, tenant_id: int = 0) -> Optional[Any]:
        shard = self._shards[self.shard_of(tenant_id, key)]
        return shard.lookup(self.namespaced(tenant_id, key))

    def update(self, key: Hashable, value: Any, tenant_id: int = 0) -> bool:
        """Insert/overwrite ``key`` for ``tenant_id``.

        Returns True when the entry is resident afterwards; False when a
        *new* entry was refused because the tenant's quota is exhausted
        (recorded in :attr:`quota_drops` — the caller should process the
        packet statelessly and keep forwarding).
        """
        stored = self.namespaced(tenant_id, key)
        shard = self._shards[self.shard_of(tenant_id, key)]
        if shard.lookup(stored) is not None:
            shard.insert(stored, value)  # overwrite: no new residency
            return True
        if (
            self.tenant_quota is not None
            and self._tenant_entries.get(tenant_id, 0) >= self.tenant_quota
        ):
            self.quota_drops[tenant_id] = self.quota_drops.get(tenant_id, 0) + 1
            return False
        shard.insert(stored, value)
        self._tenant_entries[tenant_id] = self._tenant_entries.get(tenant_id, 0) + 1
        return True

    def delete(self, key: Hashable, tenant_id: int = 0) -> bool:
        shard = self._shards[self.shard_of(tenant_id, key)]
        if shard.delete(self.namespaced(tenant_id, key)):
            remaining = self._tenant_entries.get(tenant_id, 0) - 1
            if remaining > 0:
                self._tenant_entries[tenant_id] = remaining
            else:
                self._tenant_entries.pop(tenant_id, None)
            return True
        return False

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def __contains__(self, key: Hashable) -> bool:
        return self.lookup(key) is not None

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """All ``((tenant_id, key), value)`` entries, shard by shard."""
        for shard in self._shards:
            for entry in shard.items():
                yield entry

    def tenant_entries(self, tenant_id: int) -> int:
        """Resident entry count charged against ``tenant_id``'s quota."""
        return self._tenant_entries.get(tenant_id, 0)

    @property
    def grow_events(self) -> int:
        """Total cuckoo grow events across shards (0 == sized correctly)."""
        return sum(s.grow_events for s in self._shards)

    def stats_snapshot(self) -> Dict[str, Any]:
        """Sizing + quota observability (what telemetry/inspect report)."""
        return {
            "entries": len(self),
            "num_shards": self.num_shards,
            "grow_events": self.grow_events,
            "shard_entries": [len(s) for s in self._shards],
            "tenant_entries": dict(sorted(self._tenant_entries.items())),
            "quota_drops": dict(sorted(self.quota_drops.items())),
            "drop_cause": QUOTA_DROP_CAUSE,
        }

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()
        self._tenant_entries.clear()
        self.quota_drops.clear()
