"""The curated chaos matrix behind ``scr-repro chaos``.

One call runs two complementary sweeps and folds them into a single
``BENCH_chaos_recovery.json`` artifact:

* **functional rows** — :func:`repro.faults.harness.run_chaos` over a
  fixed set of fault classes × programs, asserting the properties the
  subsystem exists for: every injected history gap detected, state
  digests equal to the fault-free golden run after recovery, and the
  known-unrecoverable configurations reported as such (never silently
  wrong);
* **perf rows** — SCR MLFFR under rising injected drop rates through the
  ordinary Scenario/executor machinery, quantifying throughput
  degradation and the recovery work absorbed at the reported rate.

Determinism: the artifact is a pure function of (seed, quick) — the
provenance stamps that normally record wall-clock and platform are left
empty so ``--jobs 2`` and ``--jobs 1`` write byte-identical files (the
CI chaos-smoke job ``cmp``'s them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cpu.costmodel import CPU_FREQ_GHZ, TABLE4_PARAMS
from ..perf.artifact import BenchArtifact, BenchPoint, BenchSeries
from ..perf.suite import _MPPS_NOISE_FLOOR, _SCR_IN_FRAME
from ..scenario.executor import ScenarioExecutor
from ..scenario.spec import Scenario
from ..telemetry.artifact import current_git_sha
from .harness import ChaosOutcome, run_chaos
from .spec import FaultSpec

__all__ = ["ChaosMatrixParams", "ChaosRow", "ChaosReport", "fault_classes",
           "run_chaos_matrix"]

#: Drop rates for the MLFFR-degradation sweep (0 = the fault-free anchor).
DROP_RATE_SWEEP = (0.0, 0.005, 0.01, 0.02)


@dataclass(frozen=True)
class ChaosMatrixParams:
    """Everything that determines one matrix run (and its artifact)."""

    seed: int = 7
    jobs: int = 1
    quick: bool = True
    cache_dir: Optional[str] = None

    @property
    def max_packets(self) -> int:
        return 800 if self.quick else 2000

    @property
    def perf_max_packets(self) -> int:
        return 1500 if self.quick else 3000


@dataclass(frozen=True)
class ChaosRow:
    """One functional matrix entry: a fault class applied to a program."""

    name: str
    program: str
    spec: FaultSpec
    #: run_chaos overrides (num_slots, recovery, ...).
    run_kwargs: Tuple[Tuple[str, object], ...] = ()
    #: what this row demonstrates (lands in the artifact config).
    expects: str = "recovered"


def fault_classes(seed: int) -> List[ChaosRow]:
    """The curated fault classes, each exercising one failure mode.

    Programs are spread across the rows so the quarantine→resync
    round-trip is demonstrated for at least three distinct programs.
    """
    return [
        ChaosRow(
            name="rx_drop", program="ddos",
            spec=FaultSpec.create(seed=seed, drop_rate=0.02),
            expects="recovered",
        ),
        ChaosRow(
            name="pop_drop", program="token_bucket",
            spec=FaultSpec.create(seed=seed, pop_drop_rate=0.02),
            expects="recovered",
        ),
        ChaosRow(
            # Depth 2 is the smallest harmful truncation: with n = k the
            # oldest row is outside every replica's needed window, so a
            # depth-1 readout failure is provably harmless.
            name="history_truncate", program="conntrack",
            spec=FaultSpec.create(seed=seed, truncate_rate=0.03,
                                  truncate_depth=2),
            expects="recovered",
        ),
        ChaosRow(
            name="dup_reorder", program="token_bucket",
            spec=FaultSpec.create(seed=seed, duplicate_rate=0.02,
                                  reorder_rate=0.02, reorder_window=3),
            expects="recovered",
        ),
        ChaosRow(
            # A widened history window (§3.1's n > k) heals the same drop
            # rate without a single resync.
            name="wide_history", program="heavy_hitter",
            spec=FaultSpec.create(seed=seed, drop_rate=0.02),
            run_kwargs=(("num_slots", 12),),
            expects="covered",
        ),
        ChaosRow(
            # A bounded sequencer log must *report* gaps it can no longer
            # replay, not hide them.
            name="bounded_log", program="ddos",
            spec=FaultSpec.create(seed=seed, drop_rate=0.02, epoch_len=64,
                                  history_log_capacity=8),
            expects="unrecoverable",
        ),
        ChaosRow(
            # The no-protocol baseline: gaps are still detected, replicas
            # fork — quantifying what recovery buys.
            name="no_recovery", program="ddos",
            spec=FaultSpec.create(seed=seed, drop_rate=0.02),
            run_kwargs=(("recovery", False),),
            expects="forked",
        ),
    ]


@dataclass
class ChaosReport:
    """The matrix verdict plus the artifact it was distilled into."""

    params: ChaosMatrixParams
    outcomes: Dict[str, ChaosOutcome] = field(default_factory=dict)
    artifact: Optional[BenchArtifact] = None
    mlffr_by_rate: Dict[str, float] = field(default_factory=dict)

    @property
    def gaps_injected(self) -> int:
        return sum(o.gap_events for o in self.outcomes.values())

    @property
    def gaps_detected(self) -> int:
        return sum(o.gap_events_detected for o in self.outcomes.values())

    @property
    def undetected_divergences(self) -> int:
        return sum(o.undetected_divergences for o in self.outcomes.values())

    @property
    def resynced_classes(self) -> List[str]:
        """Classes that resynchronized *and* ended digest-equal to golden."""
        return sorted(
            name for name, o in self.outcomes.items()
            if o.resyncs > 0 and o.digest_equal
        )

    @property
    def ok(self) -> bool:
        """The chaos gate: no missed gap, no silent fork, and at least
        one fault class demonstrating full state resynchronization."""
        return (
            self.gaps_detected == self.gaps_injected
            and self.undetected_divergences == 0
            and len(self.resynced_classes) >= 1
        )

    def summary_lines(self) -> List[str]:
        lines = [
            f"chaos matrix: {len(self.outcomes)} fault classes, "
            f"{self.gaps_injected} history gaps injected, "
            f"{self.gaps_detected} detected, "
            f"{self.undetected_divergences} undetected divergences",
        ]
        for name in sorted(self.outcomes):
            o = self.outcomes[name]
            state = ("digest-equal" if o.digest_equal
                     else f"forked ({len(o.suspect_cores)} suspect cores)")
            extras = []
            if o.resyncs:
                extras.append(f"{o.resyncs} resyncs")
            if o.gaps_covered:
                extras.append(f"{o.gaps_covered} window-covered")
            if o.unrecoverable_cores:
                extras.append(
                    f"{len(o.unrecoverable_cores)} unrecoverable cores"
                )
            suffix = f" ({', '.join(extras)})" if extras else ""
            lines.append(
                f"  {name:17s} [{o.program}] "
                f"gaps {o.gap_events_detected}/{o.gap_events} detected, "
                f"{state}{suffix}"
            )
        if self.mlffr_by_rate:
            base = self.mlffr_by_rate.get("0", 0.0)
            for rate, mpps in sorted(self.mlffr_by_rate.items(),
                                     key=lambda kv: float(kv[0])):
                deg = (100.0 * (base - mpps) / base) if base else 0.0
                lines.append(
                    f"  mlffr @ drop={rate}: {mpps:.2f} Mpps"
                    f" ({deg:+.1f}% vs fault-free)" if rate != "0"
                    else f"  mlffr @ drop=0: {mpps:.2f} Mpps (baseline)"
                )
        lines.append("chaos gate: " + ("PASS" if self.ok else "FAIL"))
        return lines


def _recovery_cycles(outcome: ChaosOutcome, program: str) -> float:
    """Mean resync latency in CPU cycles: replayed transitions × c2."""
    if not outcome.resync_replays:
        return 0.0
    c2 = TABLE4_PARAMS[program].c2
    return outcome.mean_resync_replay * c2 * CPU_FREQ_GHZ


def run_chaos_matrix(params: Optional[ChaosMatrixParams] = None) -> ChaosReport:
    """Run the curated matrix; see :class:`ChaosReport` for the verdict."""
    params = params or ChaosMatrixParams()
    report = ChaosReport(params=params)

    rows = fault_classes(params.seed)
    for row in rows:
        kwargs = dict(row.run_kwargs)
        report.outcomes[row.name] = run_chaos(
            row.program,
            row.spec,
            num_cores=4,
            max_packets=params.max_packets,
            trace_seed=params.seed,
            **kwargs,  # type: ignore[arg-type]
        )

    # -- perf sweep: MLFFR degradation vs drop rate ---------------------------
    program, trace, cores = "ddos", "univ_dc", 4
    grid = [
        Scenario.create(
            program, trace, "scr", cores,
            num_flows=30, max_packets=params.perf_max_packets,
            seed=params.seed, engine_kwargs=dict(_SCR_IN_FRAME),
            faults=(None if rate == 0.0
                    else FaultSpec.create(seed=params.seed, drop_rate=rate)),
        )
        for rate in DROP_RATE_SWEEP
    ]
    executor = ScenarioExecutor(jobs=params.jobs, cache_dir=params.cache_dir)
    perf_results = executor.run(grid)

    # -- distill into the artifact --------------------------------------------
    # Constructed directly, NOT via BenchArtifact.create(): the wall-clock
    # and platform stamps are intentionally empty so repeated runs (and
    # serial-vs-parallel runs) write byte-identical files.
    art = BenchArtifact(
        name="chaos_recovery",
        config={
            "seed": params.seed,
            "quick": params.quick,
            "max_packets": params.max_packets,
            "perf_max_packets": params.perf_max_packets,
            "drop_rate_sweep": list(DROP_RATE_SWEEP),
            "classes": {
                row.name: {
                    "program": row.program,
                    "expects": row.expects,
                    "spec": row.spec.canonical_dict(),
                    "run_kwargs": {k: v for k, v in row.run_kwargs},
                    "outcome": report.outcomes[row.name].to_dict(),
                }
                for row in rows
            },
        },
        seed_policy={"base_seed": params.seed,
                     "policy": "single seeded run; fully deterministic"},
        git_sha=current_git_sha(),
        table4_params={},
    )
    detection = art.add_series(BenchSeries(
        name="gap_detection", unit="fraction", direction="higher_better"))
    equality = art.add_series(BenchSeries(
        name="digest_equality", unit="bool", direction="higher_better"))
    latency = art.add_series(BenchSeries(
        name="recovery_latency_cycles", unit="cycles",
        direction="lower_better"))
    for row in rows:
        o = report.outcomes[row.name]
        frac = (o.gap_events_detected / o.gap_events) if o.gap_events else 1.0
        detection.points.append(BenchPoint.from_reps(row.name, [frac]))
        equality.points.append(
            BenchPoint.from_reps(row.name, [1.0 if o.digest_equal else 0.0]))
        latency.points.append(
            BenchPoint.from_reps(row.name,
                                 [_recovery_cycles(o, row.program)]))

    mpps = art.add_series(BenchSeries(
        name="mlffr_vs_drop_rate", unit="mpps", direction="higher_better",
        noise_floor=_MPPS_NOISE_FLOOR))
    degradation = art.add_series(BenchSeries(
        name="mlffr_degradation_pct", unit="percent",
        direction="lower_better", noise_floor=2.0))
    base_mpps = perf_results[0].mlffr_mpps
    for rate, res in zip(DROP_RATE_SWEEP, perf_results):
        key = f"{rate:g}"
        mpps.points.append(BenchPoint.from_reps(key, [res.mlffr_mpps]))
        deg = (100.0 * (base_mpps - res.mlffr_mpps) / base_mpps
               if base_mpps else 0.0)
        degradation.points.append(BenchPoint.from_reps(key, [deg]))
        report.mlffr_by_rate[key] = res.mlffr_mpps

    report.artifact = art
    return report
