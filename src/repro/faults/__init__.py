"""repro.faults — fault injection, divergence detection, gap recovery.

The paper evaluates SCR on a reliable testbed; this package asks what
happens when the machine misbehaves.  Three pillars:

* **injection** (:mod:`spec`, :mod:`plan`, :mod:`inject`) — a frozen
  :class:`FaultSpec` compiled into a seeded, order-independent
  :class:`FaultPlan` (drops, ring-pop drops, duplicates, bounded
  reordering, history truncation, core stalls/kills);
* **detection** (:mod:`digest`, :mod:`monitor`) — stable state digests
  and a :class:`DivergenceMonitor` that makes silent replica forks
  observable;
* **recovery** (:mod:`recovery`, :mod:`harness`) — sequence-gap
  detection on the SCR history plus epoch-checkpoint resynchronization,
  exercised end to end by :func:`run_chaos` and the curated
  :mod:`matrix` behind ``scr-repro chaos``.

``harness`` and ``matrix`` import the scenario/simulator layers, which
in turn may import this package — so they load lazily via PEP 562.
"""

from __future__ import annotations

from .digest import canonicalize, replica_digests, state_digest
from .inject import SequencerFaults, SimFaults
from .monitor import DivergenceMonitor, DivergenceReport, live_mask, majority_digest
from .plan import FaultPlan
from .recovery import EpochCheckpointer, ResyncOutcome
from .spec import FAULT_SCHEMA, FaultSpec

__all__ = [
    "FAULT_SCHEMA",
    "FaultSpec",
    "FaultPlan",
    "SimFaults",
    "SequencerFaults",
    "canonicalize",
    "state_digest",
    "replica_digests",
    "DivergenceMonitor",
    "DivergenceReport",
    "majority_digest",
    "live_mask",
    "EpochCheckpointer",
    "ResyncOutcome",
    "ChaosOutcome",
    "DeliveryOutcome",
    "run_chaos",
    "run_chaos_matrix",
]

_LAZY = {
    "ChaosOutcome": "harness",
    "DeliveryOutcome": "harness",
    "run_chaos": "harness",
    "run_chaos_matrix": "matrix",
}


def __getattr__(name: str) -> object:
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f".{_LAZY[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
