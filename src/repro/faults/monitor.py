"""Replica-divergence detection over periodic state digests.

A forked replica is silent: it keeps forwarding packets, its verdicts
just slowly drift from every other core's.  The monitor makes the fork
observable — every ``interval`` packets it compares the per-replica
digests (see :mod:`repro.faults.digest`), records the first packet index
at which any replica left the majority, tracks the blast radius (how
many replicas disagree at once), and emits typed ``fault.divergence``
events through the ordinary tracer so ``scr-repro inspect`` can
summarize runs after the fact.

"Majority" is the most common digest among live replicas, with a
deterministic lexicographic tie-break — never wall-clock or arrival
order, so serial and parallel runs report identical divergence windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..telemetry.events import EV_DIVERGENCE, NULL_TRACER, EventTracer

__all__ = ["DivergenceReport", "DivergenceMonitor"]


@dataclass(frozen=True)
class DivergenceReport:
    """Summary of one monitored run."""

    checks: int
    divergent_checks: int
    first_divergence_index: Optional[int]
    max_blast_radius: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "checks": self.checks,
            "divergent_checks": self.divergent_checks,
            "first_divergence_index": self.first_divergence_index,
            "max_blast_radius": self.max_blast_radius,
        }


def majority_digest(digests: Sequence[str]) -> str:
    """The most common digest; ties break to the lexicographically
    smallest so the answer never depends on replica ordering."""
    if not digests:
        raise ValueError("need at least one digest")
    counts: Dict[str, int] = {}
    for d in digests:
        counts[d] = counts.get(d, 0) + 1
    return min(counts, key=lambda d: (-counts[d], d))


class DivergenceMonitor:
    """Snapshots replica digests every N packets and flags disagreement."""

    def __init__(self, interval: int = 64, tracer: EventTracer = NULL_TRACER) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self.tracer = tracer
        self.checks = 0
        self.divergent_checks = 0
        self.first_divergence_index: Optional[int] = None
        self.max_blast_radius = 0
        self.last_divergent_cores: Tuple[int, ...] = ()
        #: every core the monitor ever saw diverge (detection bookkeeping).
        self.flagged_cores: Set[int] = set()

    def due(self, packet_index: int) -> bool:
        """Is a digest comparison due after packet ``packet_index``?"""
        return (packet_index + 1) % self.interval == 0

    def observe(
        self,
        packet_index: int,
        digests: Sequence[str],
        live: Optional[Sequence[bool]] = None,
        expected: Optional[Sequence[str]] = None,
    ) -> bool:
        """Compare one round of replica digests; True when all agree.

        ``live`` masks out replicas that are legitimately excluded from
        the consistency claim (killed or flagged-unrecoverable cores);
        a dead replica's stale digest is not a divergence.

        Without ``expected``, replicas are compared against the majority
        digest — only valid when all replicas sit at the same sequence
        point (e.g. after a tail flush).  Mid-stream, replicas lag each
        other legitimately, so the caller passes ``expected``: the
        fault-free golden digest *at each replica's own sequence point*,
        and a replica diverges iff it mismatches its own expectation.
        """
        alive = [
            (core, digest)
            for core, digest in enumerate(digests)
            if live is None or live[core]
        ]
        self.checks += 1
        if not alive:
            return True
        if expected is not None:
            divergent = tuple(
                core for core, d in alive if d != expected[core]
            )
        else:
            majority = majority_digest([d for _, d in alive])
            divergent = tuple(core for core, d in alive if d != majority)
        self.last_divergent_cores = divergent
        if not divergent:
            return True
        self.divergent_checks += 1
        self.flagged_cores.update(divergent)
        if self.first_divergence_index is None:
            self.first_divergence_index = packet_index
        if len(divergent) > self.max_blast_radius:
            self.max_blast_radius = len(divergent)
        if self.tracer.enabled:
            self.tracer.emit(
                EV_DIVERGENCE,
                index=packet_index,
                cores=list(divergent),
                blast_radius=len(divergent),
                first=self.first_divergence_index == packet_index,
            )
        return False

    def report(self) -> DivergenceReport:
        return DivergenceReport(
            checks=self.checks,
            divergent_checks=self.divergent_checks,
            first_divergence_index=self.first_divergence_index,
            max_blast_radius=self.max_blast_radius,
        )


def live_mask(num_cores: int, dead_cores: Sequence[int]) -> List[bool]:
    """Convenience: the ``live`` argument from a list of dead core ids."""
    dead = set(dead_cores)
    return [core not in dead for core in range(num_cores)]
