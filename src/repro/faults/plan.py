"""Deterministic fault schedules: a FaultSpec turned into decisions.

The whole fault subsystem rests on one property: *the schedule is a pure
function of the spec*.  A sequential PRNG cannot give that — whether
packet 512 drops would depend on how many random draws preceded it, which
differs between the serial and ``--jobs N`` paths and between an MLFFR
search's probes.  Instead every decision hashes ``(seed, fault kind,
packet index)`` through a splitmix64-style integer mixer into a uniform
[0, 1) value and compares it against the spec's rate.  Consequences:

* examining packets in any order (or not at all) yields the same answers;
* every MLFFR probe of one scenario sees the identical fault pattern;
* two processes never need to share RNG state to agree.

This is the "injected seeded FaultPlan RNG" that scrlint SCR006 requires
all fault/recovery code to route randomness through.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .spec import FaultSpec

__all__ = ["FaultPlan"]

_MASK64 = (1 << 64) - 1
#: Domain-separation tags: one per fault kind, so a packet's drop decision
#: is independent of its duplicate/reorder/truncate decisions.
_TAG_DROP = 0x1D
_TAG_POP_DROP = 0x2D
_TAG_DUPLICATE = 0x3D
_TAG_REORDER = 0x4D
_TAG_REORDER_OFFSET = 0x5D
_TAG_TRUNCATE = 0x6D


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 output mixer (public-domain constants)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _unit(seed: int, tag: int, index: int) -> float:
    """Uniform [0, 1) as a pure function of (seed, tag, index)."""
    h = _splitmix64((seed & _MASK64) ^ (tag * 0xA24BAED4963EE407 & _MASK64))
    h = _splitmix64(h ^ (index & _MASK64))
    # Top 53 bits → an exactly representable double in [0, 1).
    return (h >> 11) / float(1 << 53)


class FaultPlan:
    """Order-independent fault decisions for one :class:`FaultSpec`.

    Stateless by design: every method is a pure function of the spec and
    its arguments, so one plan can be shared (or rebuilt) freely across
    the NIC model, the event simulator, and the functional harness and
    still describe one single schedule.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._drop_ix = frozenset(spec.drop_indices)
        self._pop_ix = frozenset(spec.pop_drop_indices)
        self._dup_ix = frozenset(spec.duplicate_indices)
        self._reorder_ix = frozenset(spec.reorder_indices)
        self._trunc_seqs = frozenset(spec.truncate_seqs)
        self._stalls: Dict[int, List[Tuple[int, float]]] = {}
        for core, from_index, stall_ns in spec.core_stalls:
            self._stalls.setdefault(core, []).append((from_index, stall_ns))
        for stalls in self._stalls.values():
            stalls.sort()
        self._kills: Dict[int, int] = {}
        for core, from_index in spec.core_kills:
            prev = self._kills.get(core)
            self._kills[core] = from_index if prev is None else min(prev, from_index)

    @property
    def any_faults(self) -> bool:
        return self.spec.any_faults

    # -- per-packet decisions (0-based arrival index) -------------------------

    def drops(self, index: int) -> bool:
        """Does packet ``index`` drop between wire admission and its ring?"""
        if index in self._drop_ix:
            return True
        rate = self.spec.drop_rate
        return bool(rate) and _unit(self.spec.seed, _TAG_DROP, index) < rate

    def pop_drops(self, index: int) -> bool:
        """Is packet ``index`` discarded at the ring-pop (after dispatch)?"""
        if index in self._pop_ix:
            return True
        rate = self.spec.pop_drop_rate
        return bool(rate) and _unit(self.spec.seed, _TAG_POP_DROP, index) < rate

    def duplicates(self, index: int) -> bool:
        """Is packet ``index`` delivered twice?"""
        if index in self._dup_ix:
            return True
        rate = self.spec.duplicate_rate
        return bool(rate) and _unit(self.spec.seed, _TAG_DUPLICATE, index) < rate

    def reorder_offset(self, index: int) -> int:
        """0 (in order) or 1..reorder_window packets of displacement."""
        window = self.spec.reorder_window
        if index in self._reorder_ix:
            return 1 + int(_unit(self.spec.seed, _TAG_REORDER_OFFSET, index) * window)
        rate = self.spec.reorder_rate
        if not rate or _unit(self.spec.seed, _TAG_REORDER, index) >= rate:
            return 0
        return 1 + int(_unit(self.spec.seed, _TAG_REORDER_OFFSET, index) * window)

    # -- sequencer decisions (1-based sequence numbers) -----------------------

    def truncate_depth(self, seq: int) -> int:
        """How many oldest history rows of emission ``seq`` are lost."""
        if seq in self._trunc_seqs:
            return self.spec.truncate_depth
        rate = self.spec.truncate_rate
        if rate and _unit(self.spec.seed, _TAG_TRUNCATE, seq) < rate:
            return self.spec.truncate_depth
        return 0

    # -- per-core schedules ---------------------------------------------------

    def stalls_for(self, core: int) -> Tuple[Tuple[int, float], ...]:
        """Sorted (from_index, stall_ns) schedule for ``core``."""
        return tuple(self._stalls.get(core, ()))

    def kill_index(self, core: int) -> Optional[int]:
        """The packet index at which ``core`` dies, or None."""
        return self._kills.get(core)

    # -- introspection --------------------------------------------------------

    def schedule(self, num_packets: int) -> Dict[str, List[int]]:
        """The firing indices over ``num_packets`` packets, per kind.

        Tests use this to assert determinism (same spec ⇒ same schedule)
        and artifacts use it to report exactly what was injected.
        """
        return {
            "drop": [i for i in range(num_packets) if self.drops(i)],
            "pop_drop": [i for i in range(num_packets) if self.pop_drops(i)],
            "duplicate": [i for i in range(num_packets) if self.duplicates(i)],
            "reorder": [i for i in range(num_packets) if self.reorder_offset(i)],
            "truncate": [s for s in range(1, num_packets + 1)
                         if self.truncate_depth(s)],
        }
