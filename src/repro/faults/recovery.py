"""Epoch-checkpoint resynchronization: the sequencer-side recovery model.

Algorithm 1 recovers *bounded* gaps from peer logs; a replica that lost
history beyond the piggybacked window (a quarantined replica) needs a
stronger mechanism.  The sequencer already sees every packet in order, so
it can cheaply maintain:

* a **shadow replica** — the program state fast-forwarded through every
  sequenced packet (the sequencer never computes verdicts, only state);
* **epoch checkpoints** — a snapshot of the shadow every ``epoch_len``
  sequences;
* a **replay log** — the packed metadata of recent sequences, optionally
  bounded by ``log_capacity`` (real hardware has finite SRAM).

``resync(state, to_seq)`` restores the newest checkpoint at or before
``to_seq`` and replays the log up to ``to_seq``, leaving ``state`` exactly
equal to a fault-free replica at that sequence.  When the bounded log has
already evicted needed entries the gap is **unrecoverable** and reported
as such — surfacing, rather than hiding, the limit of the protocol.

Determinism: no clocks, no RNGs (scrlint SCR006) — recovery outcomes are
a pure function of the sequenced stream and the spec's epoch/log bounds.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

from ..programs.base import PacketProgram
from ..state.maps import StateMap

__all__ = ["ResyncOutcome", "EpochCheckpointer"]


@dataclass(frozen=True)
class ResyncOutcome:
    """Result of one resynchronization attempt."""

    to_seq: int
    #: the checkpoint sequence restored from (-1 when unrecoverable).
    checkpoint_seq: int
    #: log entries replayed on top of the checkpoint.
    replayed: int
    unrecoverable: bool = False


class EpochCheckpointer:
    """Sequencer-side shadow state, epoch checkpoints, and replay log."""

    def __init__(
        self,
        program: PacketProgram,
        epoch_len: int = 32,
        log_capacity: Optional[int] = None,
        state_capacity: int = 4096,
    ) -> None:
        if epoch_len < 1:
            raise ValueError("epoch_len must be >= 1")
        if log_capacity is not None and log_capacity < 1:
            raise ValueError("log_capacity must be >= 1 (or None)")
        self.program = program
        self.epoch_len = epoch_len
        self.log_capacity = log_capacity
        self._shadow = StateMap(capacity=state_capacity)
        #: seq → packed metadata, contiguous, oldest evicted first.
        self._log: "OrderedDict[int, bytes]" = OrderedDict()
        #: seq → full state snapshot; seq 0 is the empty initial state.
        self._checkpoints: Dict[int, Dict[Hashable, Any]] = {0: {}}
        self.last_seq = 0
        self.checkpoints_taken = 0
        self.resyncs = 0
        self.replayed_total = 0
        self.unrecoverable_requests = 0

    def record(self, seq: int, meta_bytes: bytes) -> None:
        """Fold one sequenced packet into the shadow replica and the log.

        The sequencer numbers packets contiguously, so out-of-order or
        gapped recording is a caller bug, not a modeled fault.
        """
        if seq != self.last_seq + 1:
            raise ValueError(
                f"checkpointer expects sequence {self.last_seq + 1}, got {seq}"
            )
        meta = self.program.metadata_cls.unpack(meta_bytes)
        self.program.fast_forward(self._shadow, meta)
        self.last_seq = seq
        self._log[seq] = meta_bytes
        if self.log_capacity is not None:
            while len(self._log) > self.log_capacity:
                self._log.popitem(last=False)
        if seq % self.epoch_len == 0:
            self._checkpoints[seq] = self._shadow.snapshot()
            self.checkpoints_taken += 1

    def _oldest_logged(self) -> Optional[int]:
        return next(iter(self._log)) if self._log else None

    def feasible_checkpoint(self, to_seq: int) -> Optional[int]:
        """The newest checkpoint from which ``to_seq`` is reachable.

        A checkpoint ``ck`` works when every sequence in ``ck+1..to_seq``
        is still in the (contiguous) log — i.e. the log's oldest entry is
        at most ``ck + 1`` — or when ``ck == to_seq`` (nothing to replay).
        """
        if to_seq > self.last_seq:
            return None
        oldest = self._oldest_logged()
        best: Optional[int] = None
        for ck in self._checkpoints:
            if ck > to_seq:
                continue
            if ck != to_seq and (oldest is None or oldest > ck + 1):
                continue
            if best is None or ck > best:
                best = ck
        return best

    def resync(self, state: StateMap, to_seq: int) -> ResyncOutcome:
        """Rebuild ``state`` to exactly the fault-free state at ``to_seq``."""
        ck = self.feasible_checkpoint(to_seq)
        if ck is None:
            self.unrecoverable_requests += 1
            return ResyncOutcome(
                to_seq=to_seq, checkpoint_seq=-1, replayed=0, unrecoverable=True
            )
        state.clear()
        for key, value in self._checkpoints[ck].items():
            state.update(key, value)
        replayed = 0
        for seq in range(ck + 1, to_seq + 1):
            meta = self.program.metadata_cls.unpack(self._log[seq])
            self.program.fast_forward(state, meta)
            replayed += 1
        self.resyncs += 1
        self.replayed_total += replayed
        return ResyncOutcome(
            to_seq=to_seq, checkpoint_seq=ck, replayed=replayed
        )

    def summary(self) -> Dict[str, object]:
        return {
            "checkpoints_taken": self.checkpoints_taken,
            "resyncs": self.resyncs,
            "replayed_total": self.replayed_total,
            "unrecoverable_requests": self.unrecoverable_requests,
        }
