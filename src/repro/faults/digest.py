"""Stable digests over program state: the divergence-detection primitive.

A replica digest must satisfy two properties the builtin ``hash`` (salted
per process) and ``repr`` of a dict (insertion-ordered) do not:

* **stability** — the same logical state yields the same digest across
  processes, pickling round-trips, and dict insertion orders, or the
  serial-vs-``--jobs`` parity guarantee dies at the monitor;
* **structure awareness** — program state values are frozen dataclasses,
  enums, tuples, ints (e.g. conntrack's TCP state records), so the
  canonicalization must recurse and must not conflate ``1``/``True``/"1".

Every value is lowered to a type-tagged JSON tree (sorted maps, hex
bytes, ``repr`` floats) and SHA-256 hashed.  Anything unloweable raises
``TypeError`` loudly — a silent fallback would turn "digests match" into
a vacuous claim.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, List, Mapping, Sequence

__all__ = ["canonicalize", "state_digest", "replica_digests"]


def _sort_key(canon: object) -> str:
    return json.dumps(canon, sort_keys=True, separators=(",", ":"))


def canonicalize(value: Any) -> object:
    """Lower ``value`` to a deterministic, type-tagged JSON-safe tree."""
    if value is None:
        return ["null"]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, enum.Enum):
        # Before int: IntEnum members are ints, but the class identity is
        # part of the state's meaning (two enums sharing values differ).
        return ["e", type(value).__name__, canonicalize(value.value)]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", repr(value)]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, (bytes, bytearray)):
        return ["y", bytes(value).hex()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = [
            [f.name, canonicalize(getattr(value, f.name))]
            for f in dataclasses.fields(value)
        ]
        return ["d", type(value).__name__, fields]
    if isinstance(value, (list, tuple)):
        return ["l", [canonicalize(v) for v in value]]
    if isinstance(value, (set, frozenset)):
        members = sorted((canonicalize(v) for v in value), key=_sort_key)
        return ["set", members]
    if isinstance(value, Mapping):
        items = [[canonicalize(k), canonicalize(v)] for k, v in value.items()]
        items.sort(key=lambda kv: _sort_key(kv[0]))
        return ["m", items]
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for a state digest; "
        "program state must be built from scalars, tuples, enums, and "
        "(frozen) dataclasses"
    )


def state_digest(snapshot: Mapping[Any, Any]) -> str:
    """SHA-256 hex digest of one replica's state snapshot.

    ``snapshot`` is what :meth:`repro.state.maps.StateMap.snapshot`
    returns; equal logical contents give equal digests regardless of
    insertion order or which process computed them.
    """
    canonical = json.dumps(
        canonicalize(dict(snapshot)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def replica_digests(snapshots: Sequence[Mapping[Any, Any]]) -> List[str]:
    """Digest every replica snapshot (one call per monitor observation)."""
    return [state_digest(s) for s in snapshots]
