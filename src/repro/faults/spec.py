"""Declarative fault specifications: the single vocabulary for "what breaks".

SCR's correctness story assumes every core sees an unbroken piggybacked
history; this module describes the ways that assumption fails in deployment
— RX-descriptor drops, NIC reordering pathologies (Flow Director style),
duplicated frames, a sequencer whose history SRAM loses rows, stalled or
dead cores — as one frozen, hashable :class:`FaultSpec`.

Like :class:`~repro.scenario.spec.TraceSpec`, a FaultSpec is pure data:
JSON-scalar leaves, frozen, picklable, content-hashed under a schema
version.  It never *decides* anything; :class:`~repro.faults.plan.FaultPlan`
turns a spec into deterministic per-packet decisions.  A Scenario embeds an
optional FaultSpec and folds :meth:`canonical_dict` into its content hash,
so cached grids can never confuse a faulty run with a clean one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

__all__ = ["FAULT_SCHEMA", "FaultSpec"]

#: Bump on any incompatible change to the canonical fault shape; part of
#: the content hash, so old scenario hashes stop matching automatically.
FAULT_SCHEMA = 1


def _as_int_tuple(values: Iterable[int]) -> Tuple[int, ...]:
    return tuple(int(v) for v in values)


@dataclass(frozen=True)
class FaultSpec:
    """Everything that determines an injected fault schedule.

    Rates are per-packet probabilities decided by a seeded hash of
    (seed, fault kind, packet index) — see :class:`~repro.faults.plan.
    FaultPlan` — so the schedule is a pure function of this spec and is
    identical whether packets are examined in order, out of order, or
    across processes.  Explicit index schedules (``drop_indices`` etc.)
    fire in addition to the rates, for pinpoint tests.

    Packet indices are 0-based arrival order; sequencer sequence numbers
    (``truncate`` schedules) are 1-based, matching the sequencer.
    """

    seed: int = 7
    #: wire→ring loss: the packet is admitted by the MAC but never reaches
    #: its RX descriptor (the Fig. 6/9/10a ring-drop pathology, injected).
    drop_rate: float = 0.0
    #: loss at the ring-pop: the descriptor is consumed but the payload is
    #: bad (e.g. a DMA error), so the core discards it after dispatch.
    pop_drop_rate: float = 0.0
    #: probability a packet is held back and re-inserted behind up to
    #: ``reorder_window`` younger packets (Flow Director-style reordering).
    reorder_rate: float = 0.0
    reorder_window: int = 4
    #: probability a frame is delivered twice (e.g. a retransmitting ToR).
    duplicate_rate: float = 0.0
    #: probability the sequencer's history block loses its oldest
    #: ``truncate_depth`` rows (zeroed, as a partial SRAM readout would).
    truncate_rate: float = 0.0
    truncate_depth: int = 1
    #: explicit 0-based packet indices that always fire (additive to rates).
    drop_indices: Tuple[int, ...] = ()
    pop_drop_indices: Tuple[int, ...] = ()
    duplicate_indices: Tuple[int, ...] = ()
    reorder_indices: Tuple[int, ...] = ()
    #: explicit 1-based sequence numbers whose history gets truncated.
    truncate_seqs: Tuple[int, ...] = ()
    #: (core, from_index, stall_ns): core pauses for stall_ns before
    #: serving the first packet at or after from_index.
    core_stalls: Tuple[Tuple[int, int, float], ...] = ()
    #: (core, from_index): core dies at from_index and never drains again.
    core_kills: Tuple[Tuple[int, int], ...] = ()
    #: divergence digests are compared every this-many packets.
    digest_interval: int = 64
    #: sequencer checkpoint cadence for epoch resynchronization.
    epoch_len: int = 32
    #: bound on the sequencer's replay log (None = unbounded); a gap whose
    #: replay needs evicted entries is unrecoverable.
    history_log_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "pop_drop_rate", "reorder_rate",
                     "duplicate_rate", "truncate_rate"):
            rate = float(getattr(self, name))
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if self.reorder_window < 1:
            raise ValueError("reorder_window must be >= 1")
        if self.truncate_depth < 1:
            raise ValueError("truncate_depth must be >= 1")
        if self.digest_interval < 1:
            raise ValueError("digest_interval must be >= 1")
        if self.epoch_len < 1:
            raise ValueError("epoch_len must be >= 1")
        if self.history_log_capacity is not None and self.history_log_capacity < 1:
            raise ValueError("history_log_capacity must be >= 1 (or None)")
        for core, from_index, stall_ns in self.core_stalls:
            if core < 0 or from_index < 0 or stall_ns <= 0:
                raise ValueError(
                    f"bad core stall ({core}, {from_index}, {stall_ns})"
                )
        for core, from_index in self.core_kills:
            if core < 0 or from_index < 0:
                raise ValueError(f"bad core kill ({core}, {from_index})")

    @classmethod
    def create(
        cls,
        *,
        seed: int = 7,
        drop_rate: float = 0.0,
        pop_drop_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_window: int = 4,
        duplicate_rate: float = 0.0,
        truncate_rate: float = 0.0,
        truncate_depth: int = 1,
        drop_indices: Iterable[int] = (),
        pop_drop_indices: Iterable[int] = (),
        duplicate_indices: Iterable[int] = (),
        reorder_indices: Iterable[int] = (),
        truncate_seqs: Iterable[int] = (),
        core_stalls: Iterable[Tuple[int, int, float]] = (),
        core_kills: Iterable[Tuple[int, int]] = (),
        digest_interval: int = 64,
        epoch_len: int = 32,
        history_log_capacity: Optional[int] = None,
    ) -> "FaultSpec":
        """Validated spec with sequence arguments normalized to tuples."""
        return cls(
            seed=seed,
            drop_rate=drop_rate,
            pop_drop_rate=pop_drop_rate,
            reorder_rate=reorder_rate,
            reorder_window=reorder_window,
            duplicate_rate=duplicate_rate,
            truncate_rate=truncate_rate,
            truncate_depth=truncate_depth,
            drop_indices=_as_int_tuple(drop_indices),
            pop_drop_indices=_as_int_tuple(pop_drop_indices),
            duplicate_indices=_as_int_tuple(duplicate_indices),
            reorder_indices=_as_int_tuple(reorder_indices),
            truncate_seqs=_as_int_tuple(truncate_seqs),
            core_stalls=tuple(
                (int(c), int(i), float(ns)) for c, i, ns in core_stalls
            ),
            core_kills=tuple((int(c), int(i)) for c, i in core_kills),
            digest_interval=digest_interval,
            epoch_len=epoch_len,
            history_log_capacity=history_log_capacity,
        )

    @property
    def any_faults(self) -> bool:
        """True when this spec can fire at all (a clean spec is a no-op)."""
        return bool(
            self.drop_rate or self.pop_drop_rate or self.reorder_rate
            or self.duplicate_rate or self.truncate_rate
            or self.drop_indices or self.pop_drop_indices
            or self.duplicate_indices or self.reorder_indices
            or self.truncate_seqs or self.core_stalls or self.core_kills
        )

    def canonical_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["core_stalls"] = [list(s) for s in self.core_stalls]
        data["core_kills"] = [list(k) for k in self.core_kills]
        for name in ("drop_indices", "pop_drop_indices", "duplicate_indices",
                     "reorder_indices", "truncate_seqs"):
            data[name] = list(getattr(self, name))
        data["schema"] = FAULT_SCHEMA
        return data

    def content_hash(self) -> str:
        """Hex digest identifying this fault schedule (schema-versioned)."""
        canonical = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        parts = []
        if self.drop_rate or self.drop_indices:
            parts.append(f"drop={self.drop_rate:g}+{len(self.drop_indices)}ix")
        if self.pop_drop_rate or self.pop_drop_indices:
            parts.append(f"pop={self.pop_drop_rate:g}")
        if self.reorder_rate or self.reorder_indices:
            parts.append(f"reorder={self.reorder_rate:g}w{self.reorder_window}")
        if self.duplicate_rate or self.duplicate_indices:
            parts.append(f"dup={self.duplicate_rate:g}")
        if self.truncate_rate or self.truncate_seqs:
            parts.append(f"trunc={self.truncate_rate:g}d{self.truncate_depth}")
        if self.core_stalls:
            parts.append(f"stalls={len(self.core_stalls)}")
        if self.core_kills:
            parts.append(f"kills={len(self.core_kills)}")
        return ", ".join(parts) if parts else "clean"
