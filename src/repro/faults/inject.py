"""Per-run injector adapters over an immutable :class:`FaultPlan`.

A plan is stateless; a *run* is not — kills latch, stalls fire once, and
counts accumulate.  These adapters hold that per-run state so the hosting
layer (the event simulator, the sequencer) stays lean:

* :class:`SimFaults` — the multicore simulator's view: wire→ring drops,
  ring-pop drops, duplicates, reorder offsets, core stalls and kills.
* :class:`SequencerFaults` — the sequencer's view: history truncation,
  zeroing the oldest rows of an emission exactly as a partial SRAM
  readout would, and remembering which sequences were hit.

Neither adapter touches clocks or process RNGs (scrlint SCR006): every
decision delegates to the plan's seeded hash.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .plan import FaultPlan

__all__ = ["SimFaults", "SequencerFaults"]


class SimFaults:
    """Mutable per-run fault state for one :func:`repro.cpu.simulator.
    simulate` run (or one functional harness run)."""

    def __init__(self, plan: FaultPlan, num_cores: int) -> None:
        self.plan = plan
        self.num_cores = num_cores
        self.dropped = 0
        self.pop_dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.stalls_fired = 0
        self.stall_ns_total = 0.0
        self.kills = 0
        self._killed = [False] * num_cores
        self._kill_at: List[Optional[int]] = [
            plan.kill_index(core) for core in range(num_cores)
        ]
        self._stalls: List[List[Tuple[int, float]]] = [
            list(plan.stalls_for(core)) for core in range(num_cores)
        ]

    # -- decisions (each counts when it fires) --------------------------------

    def drop(self, index: int) -> bool:
        if self.plan.drops(index):
            self.dropped += 1
            return True
        return False

    def pop_drop(self, index: int) -> bool:
        if self.plan.pop_drops(index):
            self.pop_dropped += 1
            return True
        return False

    def duplicate(self, index: int) -> bool:
        if self.plan.duplicates(index):
            self.duplicated += 1
            return True
        return False

    def reorder_offset(self, index: int) -> int:
        """Displacement for packet ``index``; count via :meth:`note_reorder`
        only when the host actually applied it (an empty ring can't)."""
        return self.plan.reorder_offset(index)

    def note_reorder(self, index: int) -> None:
        self.reordered += 1

    # -- core lifecycle -------------------------------------------------------

    def killed(self, core: int, index: int) -> bool:
        """Is ``core`` dead by the time it would serve packet ``index``?"""
        if self._killed[core]:
            return True
        kill_at = self._kill_at[core]
        if kill_at is not None and index >= kill_at:
            self._killed[core] = True
            self.kills += 1
            return True
        return False

    def killed_cores(self) -> List[int]:
        return [core for core, dead in enumerate(self._killed) if dead]

    def stall_ns(self, core: int, index: int) -> float:
        """Pending stall time ``core`` owes before serving ``index``."""
        pending = self._stalls[core]
        total = 0.0
        while pending and pending[0][0] <= index:
            total += pending.pop(0)[1]
            self.stalls_fired += 1
        if total:
            self.stall_ns_total += total
        return total

    def summary(self) -> Dict[str, object]:
        return {
            "fault_dropped": self.dropped,
            "fault_pop_dropped": self.pop_dropped,
            "fault_duplicated": self.duplicated,
            "fault_reordered": self.reordered,
            "stalls_fired": self.stalls_fired,
            "stall_ns_total": self.stall_ns_total,
            "core_kills": self.kills,
            "killed_cores": self.killed_cores(),
        }


class SequencerFaults:
    """History-truncation injector for the packet-history sequencer.

    Rows are zeroed oldest-first in the emitted copy only — the
    sequencer's ring memory itself stays intact, matching the failure
    mode (a bad readout of one emission, not corrupted SRAM).
    """

    def __init__(self, plan: FaultPlan, meta_size: int) -> None:
        self.plan = plan
        self.meta_size = meta_size
        self.truncations = 0
        self.rows_zeroed = 0
        #: seq of the emission → the history sequences whose rows were lost.
        self.truncated: Dict[int, Tuple[int, ...]] = {}

    def truncate(
        self,
        seq: int,
        rows: List[bytes],
        index_ptr: int,
        num_slots: int,
    ) -> Tuple[List[bytes], Tuple[int, ...]]:
        """Apply the plan to one emission's ring dump.

        ``rows`` are in ring order; chronological position ``m`` (holding
        sequence ``seq - num_slots + m``) lives at ring index
        ``(index_ptr + m) % num_slots``.  Returns (possibly new rows,
        the zeroed history sequences oldest-first).
        """
        depth = self.plan.truncate_depth(seq)
        if depth <= 0:
            return rows, ()
        zero = b"\x00" * self.meta_size
        out = list(rows)
        zeroed: List[int] = []
        for m in range(num_slots):
            s = seq - num_slots + m
            if s < 1:
                continue  # padding slot, nothing to lose
            out[(index_ptr + m) % num_slots] = zero
            zeroed.append(s)
            if len(zeroed) >= depth:
                break
        if not zeroed:
            return rows, ()
        self.truncations += 1
        self.rows_zeroed += len(zeroed)
        self.truncated[seq] = tuple(zeroed)
        return out, tuple(zeroed)

    def summary(self) -> Dict[str, object]:
        return {
            "truncations": self.truncations,
            "rows_zeroed": self.rows_zeroed,
        }
