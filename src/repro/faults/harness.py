"""The functional chaos harness: inject → detect → recover, end to end.

One :func:`run_chaos` call drives a synthesized trace through the real
sequencer and ``k`` SCR-aware replicas while a :class:`FaultPlan` breaks
the delivery path, and answers three questions with real bytes:

* **was every injected history gap detected?**  Sequence numbers on the
  piggybacked history make drops and truncations observable (a hole
  past the round-robin stagger, a zeroed row for a needed sequence);
* **what divergence did the faults cause?**  A DivergenceMonitor compares
  each replica's digest against the fault-free golden digest *at that
  replica's own sequence point* every N packets;
* **did recovery restore equality?**  With the epoch checkpointer,
  quarantined replicas resynchronize and the final digests must equal
  the golden run; without it, replicas fork silently — the behavior
  this subsystem exists to make visible.

The harness is deterministic end to end: trace synthesis, the fault
schedule, and recovery are all pure functions of the specs and seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..packet import Packet
from ..programs.base import PacketProgram, Verdict
from ..programs.registry import make_program
from ..scenario.build import build_trace
from ..scenario.spec import TraceSpec
from ..sequencer.sequencer import PacketHistorySequencer
from ..state.maps import StateMap
from ..telemetry.events import (
    EV_FAST_FORWARD,
    EV_FAULT_DROP,
    EV_FAULT_DUPLICATE,
    EV_FAULT_KILL,
    EV_FAULT_POP_DROP,
    EV_FAULT_REORDER,
    EV_FAULT_TRUNCATE,
    EV_GAP_DETECTED,
    EV_QUARANTINE,
    EV_RESYNC,
    EV_UNRECOVERABLE,
    NULL_TRACER,
    EventTracer,
)
from ..traffic.trace import Trace
from .digest import state_digest
from .inject import SequencerFaults
from .monitor import DivergenceMonitor
from .plan import FaultPlan
from .recovery import EpochCheckpointer
from .spec import FaultSpec

__all__ = ["DeliveryOutcome", "ChaosOutcome", "run_chaos"]


class _ReferenceOracle:
    """Single-threaded reference run, queryable at any sequence prefix.

    Advances lazily and caches the state digest after every sequence, so
    staggered replicas can each be compared against the golden state at
    their own ``last_seq``.
    """

    def __init__(
        self, program: PacketProgram, packets: List[Packet], state_capacity: int
    ) -> None:
        self.program = program
        self._packets = packets
        self._state = StateMap(capacity=state_capacity)
        self._cursor = 0
        self._digests: Dict[int, str] = {0: state_digest({})}
        self.verdicts: Dict[int, Verdict] = {}

    def digest_at(self, seq: int) -> str:
        """Golden digest after the first ``seq`` packets (1-based seqs)."""
        if seq > len(self._packets):
            # Flush no-ops never touch state; the tail digest applies.
            seq = len(self._packets)
        while self._cursor < seq:
            pkt = self._packets[self._cursor]
            self._cursor += 1
            self.verdicts[self._cursor] = self.program.process(self._state, pkt)
            self._digests[self._cursor] = state_digest(self._state.snapshot())
        return self._digests[seq]


@dataclass(frozen=True)
class DeliveryOutcome:
    """What one SCR-packet delivery did to one replica."""

    kind: str  # dead|stale|processed|covered|resynced|unrecoverable|forked
    seq: int = 0
    verdict: Optional[Verdict] = None
    #: length of the sequence gap this delivery had to bridge.
    needed: int = 0
    #: needed history rows that were missing or zeroed (fault-caused).
    invalid_needed: int = 0
    #: the gap exceeded the natural round-robin stagger or had bad rows.
    anomaly: bool = False
    replayed: int = 0


class _ChaosCore:
    """One replica under fault: gap detection + optional epoch resync."""

    def __init__(
        self,
        program: PacketProgram,
        core_id: int,
        codec: object,
        num_cores: int,
        checkpointer: Optional[EpochCheckpointer],
        state_capacity: int = 4096,
        tracer: EventTracer = NULL_TRACER,
    ) -> None:
        self.program = program
        self.core_id = core_id
        self.codec = codec
        self.num_cores = num_cores
        self.checkpointer = checkpointer
        self.state = StateMap(capacity=state_capacity)
        self.tracer = tracer
        self.last_seq = 0
        self.killed = False
        self.unrecoverable = False
        #: detected a gap it had no protocol to repair (no-recovery mode).
        self.suspect = False
        self.processed = 0
        self.history_applied = 0
        self.stale_ignored = 0
        self.gaps_detected = 0
        self.gaps_covered = 0
        self.quarantines = 0
        self.resyncs = 0
        self.replayed = 0
        self.resync_replays: List[int] = []

    @property
    def dead(self) -> bool:
        return self.killed or self.unrecoverable

    @property
    def flagged(self) -> bool:
        """Did this replica itself ever raise a fault signal?"""
        return self.suspect or self.gaps_detected > 0 or self.dead

    def _apply(self, rows: List[Tuple[int, bytes]]) -> None:
        for _seq, row in rows:
            meta = self.program.metadata_cls.unpack(row)
            self.program.fast_forward(self.state, meta)
            self.history_applied += 1

    def deliver(
        self, data: bytes, noop_from: Optional[int] = None
    ) -> DeliveryOutcome:
        """Process one SCR packet; see DeliveryOutcome.kind for what happened.

        ``noop_from``: sequences at or past this are the tail-flush
        no-ops; a zeroed history row for one of those is not a fault
        (their metadata never changes state anyway).
        """
        if self.dead:
            return DeliveryOutcome(kind="dead")
        header, rows, original = self.codec.decode(data)  # type: ignore[attr-defined]
        j = int(header.seq)
        if j <= self.last_seq:
            # Sequence numbers make duplicates and late reordered frames
            # trivially detectable; state is untouched.
            self.stale_ignored += 1
            return DeliveryOutcome(kind="stale", seq=j)
        pkt = Packet.from_bytes(original, timestamp_ns=header.timestamp_ns)
        n = int(self.codec.num_slots)  # type: ignore[attr-defined]
        zero = b"\x00" * int(self.codec.meta_size)  # type: ignore[attr-defined]
        gap_start = self.last_seq + 1
        needed = j - gap_start  # sequences this delivery must account for
        # Row m (chronological) holds sequence j - n + m; the window can
        # only heal back to j - n.
        # In a fault-free round-robin run cover_from == gap_start always
        # holds (a core's gap is exactly the k-1 stagger, and its first
        # packet has j <= k <= n), so any shortfall is fault evidence —
        # including at cold start, where a reordered-away first packet
        # leaves early sequences beyond the window.
        cover_from = max(gap_start, j - n, 1)
        missing = cover_from - gap_start
        invalid = 0
        apply_rows: List[Tuple[int, bytes]] = []
        for s in range(cover_from, j):
            row = rows[s - (j - n)]
            if row == zero:
                if noop_from is not None and s >= noop_from:
                    continue  # flush no-op: nothing to apply, not a fault
                invalid += 1
                continue
            apply_rows.append((s, row))
        anomaly = missing > 0 or invalid > 0 or needed > self.num_cores - 1
        kind = "processed"
        replayed = 0
        if missing or invalid:
            self.gaps_detected += 1
            if self.checkpointer is not None:
                # Quarantine: the replica's state can no longer be trusted
                # to reach j-1 from history alone; resynchronize.
                self.quarantines += 1
                if self.tracer.enabled:
                    self.tracer.emit(EV_QUARANTINE, core=self.core_id, seq=j,
                                     missing=missing, invalid_rows=invalid)
                outcome = self.checkpointer.resync(self.state, j - 1)
                if outcome.unrecoverable:
                    self.unrecoverable = True
                    if self.tracer.enabled:
                        self.tracer.emit(EV_UNRECOVERABLE, core=self.core_id,
                                         seq=j)
                    return DeliveryOutcome(
                        kind="unrecoverable", seq=j, needed=needed,
                        invalid_needed=missing + invalid, anomaly=True,
                    )
                self.resyncs += 1
                self.replayed += outcome.replayed
                self.resync_replays.append(outcome.replayed)
                if self.tracer.enabled:
                    self.tracer.emit(EV_RESYNC, core=self.core_id, seq=j,
                                     checkpoint_seq=outcome.checkpoint_seq,
                                     replayed=outcome.replayed)
                kind = "resynced"
                replayed = outcome.replayed
            else:
                # No recovery protocol: apply what survived and fork —
                # the silent-divergence behavior this subsystem detects.
                self.suspect = True
                self._apply(apply_rows)
                kind = "forked"
                if self.tracer.enabled:
                    self.tracer.emit(EV_GAP_DETECTED, core=self.core_id,
                                     seq=j, missing=missing,
                                     invalid_rows=invalid)
        else:
            self._apply(apply_rows)
            if anomaly:
                # The gap exceeded the round-robin stagger but the
                # history window still healed it (the §3.1 design).
                self.gaps_detected += 1
                self.gaps_covered += 1
                kind = "covered"
                if self.tracer.enabled:
                    self.tracer.emit(EV_FAST_FORWARD, core=self.core_id,
                                     seq=j, length=needed)
        verdict = self.program.process(self.state, pkt)
        self.last_seq = j
        self.processed += 1
        return DeliveryOutcome(
            kind=kind, seq=j, verdict=verdict, needed=needed,
            invalid_needed=missing + invalid, anomaly=anomaly,
            replayed=replayed,
        )


@dataclass
class ChaosOutcome:
    """Everything one chaos run measured, JSON-safe via :meth:`to_dict`."""

    program: str
    num_cores: int
    offered: int
    recovery_enabled: bool
    injected: Dict[str, int] = field(default_factory=dict)
    gap_events: int = 0
    gap_events_detected: int = 0
    gaps_covered: int = 0
    quarantines: int = 0
    resyncs: int = 0
    replayed_total: int = 0
    resync_replays: List[int] = field(default_factory=list)
    unrecoverable_cores: List[int] = field(default_factory=list)
    killed_cores: List[int] = field(default_factory=list)
    suspect_cores: List[int] = field(default_factory=list)
    stale_ignored: int = 0
    verdicts_checked: int = 0
    verdict_mismatches: int = 0
    divergence: Dict[str, object] = field(default_factory=dict)
    golden_digest: str = ""
    final_digests: List[str] = field(default_factory=list)
    live_cores: List[int] = field(default_factory=list)
    #: every live replica's final digest equals the fault-free golden run.
    digest_equal: bool = True
    #: live replicas whose state forked without *any* fault signal firing.
    undetected_divergences: int = 0

    @property
    def detected_all_gaps(self) -> bool:
        return self.gap_events_detected == self.gap_events

    @property
    def mean_resync_replay(self) -> float:
        if not self.resync_replays:
            return 0.0
        return sum(self.resync_replays) / len(self.resync_replays)

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "num_cores": self.num_cores,
            "offered": self.offered,
            "recovery_enabled": self.recovery_enabled,
            "injected": dict(self.injected),
            "gap_events": self.gap_events,
            "gap_events_detected": self.gap_events_detected,
            "detected_all_gaps": self.detected_all_gaps,
            "gaps_covered": self.gaps_covered,
            "quarantines": self.quarantines,
            "resyncs": self.resyncs,
            "replayed_total": self.replayed_total,
            "mean_resync_replay": self.mean_resync_replay,
            "unrecoverable_cores": list(self.unrecoverable_cores),
            "killed_cores": list(self.killed_cores),
            "suspect_cores": list(self.suspect_cores),
            "stale_ignored": self.stale_ignored,
            "verdicts_checked": self.verdicts_checked,
            "verdict_mismatches": self.verdict_mismatches,
            "divergence": dict(self.divergence),
            "digest_equal": self.digest_equal,
            "undetected_divergences": self.undetected_divergences,
        }


def run_chaos(
    program_name: str,
    spec: FaultSpec,
    *,
    num_cores: int = 4,
    workload: str = "univ_dc",
    num_flows: int = 30,
    max_packets: int = 1000,
    trace_seed: int = 7,
    num_slots: Optional[int] = None,
    recovery: bool = True,
    state_capacity: int = 4096,
    tracer: EventTracer = NULL_TRACER,
) -> ChaosOutcome:
    """Run one program under one fault spec and measure the outcome.

    ``recovery=False`` disables the epoch-checkpoint protocol: gaps are
    still *detected* (sequence numbers and zero-row checks work either
    way), but replicas fork instead of resynchronizing — the baseline
    that quantifies what the recovery protocol buys.
    """
    program = make_program(program_name)
    trace: Trace = build_trace(TraceSpec(
        workload=workload,
        num_flows=num_flows,
        max_packets=max_packets,
        seed=trace_seed,
        bidirectional=bool(program.bidirectional),
        packet_size=None,
    ))
    packets = list(trace)
    plan = FaultPlan(spec)
    seq_faults = SequencerFaults(plan, meta_size=program.metadata_size)
    sequencer = PacketHistorySequencer(
        program, num_cores, num_slots=num_slots, faults=seq_faults
    )
    checkpointer = (
        EpochCheckpointer(
            program,
            epoch_len=spec.epoch_len,
            log_capacity=spec.history_log_capacity,
            state_capacity=state_capacity,
        )
        if recovery
        else None
    )
    monitor = DivergenceMonitor(spec.digest_interval, tracer=tracer)
    oracle = _ReferenceOracle(program, packets, state_capacity)
    cores = [
        _ChaosCore(
            program, core_id=i, codec=sequencer.codec, num_cores=num_cores,
            checkpointer=checkpointer, state_capacity=state_capacity,
            tracer=tracer,
        )
        for i in range(num_cores)
    ]

    counts = {
        "drops": 0, "pop_drops": 0, "duplicates": 0, "reorders": 0,
        "truncations": 0, "rows_zeroed": 0, "kills": 0,
    }
    #: injected-but-unhealed events per core (drops since last delivery).
    expected_gap = [0] * num_cores
    #: reordering hold-back: [remaining deliveries, data] per core.
    held: List[List[List[object]]] = [[] for _ in range(num_cores)]
    verdicts: Dict[int, Verdict] = {}
    flush_seqs: set = set()
    out = ChaosOutcome(
        program=program_name, num_cores=num_cores, offered=len(packets),
        recovery_enabled=recovery,
    )

    def handle(core_id: int, outcome: DeliveryOutcome) -> None:
        """Fold one delivery outcome into the gap/verdict accounting."""
        if outcome.kind in ("dead", "stale"):
            return
        fault_pending = expected_gap[core_id] > 0
        expected_gap[core_id] = 0
        if fault_pending or outcome.invalid_needed > 0:
            out.gap_events += 1
            if outcome.anomaly:
                out.gap_events_detected += 1
        if outcome.verdict is not None and outcome.seq not in flush_seqs:
            verdicts[outcome.seq] = outcome.verdict

    def deliver(core_id: int, data: bytes, noop_from: Optional[int] = None) -> None:
        handle(core_id, cores[core_id].deliver(data, noop_from=noop_from))
        # A delivery ages every held-back frame for this core; release
        # the ones whose displacement has elapsed, in hold order.
        pending = held[core_id]
        for entry in pending:
            entry[0] = int(entry[0]) - 1  # type: ignore[call-overload]
        while pending and int(pending[0][0]) <= 0:  # type: ignore[arg-type]
            _, data2 = pending.pop(0)
            deliver(core_id, bytes(data2), noop_from=noop_from)  # type: ignore[arg-type]

    for i, pkt in enumerate(packets):
        sp = sequencer.process(pkt)
        if checkpointer is not None:
            checkpointer.record(sp.seq, program.extract_metadata(pkt).pack())
        if sp.truncated_seqs:
            counts["truncations"] += 1
            counts["rows_zeroed"] += len(sp.truncated_seqs)
            if tracer.enabled:
                tracer.emit(EV_FAULT_TRUNCATE, seq=sp.seq,
                            lost=list(sp.truncated_seqs))
        core_id = sp.core
        core = cores[core_id]
        kill_at = plan.kill_index(core_id)
        if not core.killed and kill_at is not None and i >= kill_at:
            core.killed = True
            counts["kills"] += 1
            if tracer.enabled:
                tracer.emit(EV_FAULT_KILL, core=core_id, index=i)
        if plan.drops(i):
            counts["drops"] += 1
            expected_gap[core_id] += 1
            if tracer.enabled:
                tracer.emit(EV_FAULT_DROP, core=core_id, index=i, seq=sp.seq)
        elif plan.pop_drops(i):
            counts["pop_drops"] += 1
            expected_gap[core_id] += 1
            if tracer.enabled:
                tracer.emit(EV_FAULT_POP_DROP, core=core_id, index=i,
                            seq=sp.seq)
        else:
            offset = plan.reorder_offset(i)
            if offset > 0:
                counts["reorders"] += 1
                held[core_id].append([offset, sp.data])
                if tracer.enabled:
                    tracer.emit(EV_FAULT_REORDER, core=core_id, index=i,
                                seq=sp.seq, offset=offset)
            else:
                deliver(core_id, sp.data)
            if plan.duplicates(i):
                counts["duplicates"] += 1
                if tracer.enabled:
                    tracer.emit(EV_FAULT_DUPLICATE, core=core_id, index=i,
                                seq=sp.seq)
                deliver(core_id, sp.data)
        if monitor.due(i):
            live = [not c.dead for c in cores]
            digests = [state_digest(c.state.snapshot()) for c in cores]
            expected = [oracle.digest_at(c.last_seq) for c in cores]
            monitor.observe(i, digests, live=live, expected=expected)

    # Release every held-back frame (late is better than never), then
    # flush: one no-op per core so every live replica reaches the tail,
    # exactly as ScrFunctionalEngine.flush does.  Faults never fire on
    # the flush round — these model "the next packets to arrive".
    for core_id in range(num_cores):
        pending = held[core_id]
        held[core_id] = []
        for entry in pending:
            handle(core_id, cores[core_id].deliver(bytes(entry[1])))  # type: ignore[arg-type]
    flush_from = sequencer.next_seq
    sequencer.faults = None
    for _ in range(num_cores):
        noop = Packet()  # bare Ethernet frame, not IPv4: a metadata no-op
        sp = sequencer.process(noop)
        flush_seqs.add(sp.seq)
        if checkpointer is not None:
            checkpointer.record(sp.seq, program.extract_metadata(noop).pack())
        deliver(sp.core, sp.data, noop_from=flush_from)

    # -- final accounting ------------------------------------------------------
    total = len(packets)
    golden = oracle.digest_at(total)
    final_digests = [state_digest(c.state.snapshot()) for c in cores]
    live = [i for i, c in enumerate(cores) if not c.dead]
    out.injected = counts
    out.gaps_covered = sum(c.gaps_covered for c in cores)
    out.quarantines = sum(c.quarantines for c in cores)
    out.resyncs = sum(c.resyncs for c in cores)
    out.replayed_total = sum(c.replayed for c in cores)
    out.resync_replays = [r for c in cores for r in c.resync_replays]
    out.unrecoverable_cores = [i for i, c in enumerate(cores) if c.unrecoverable]
    out.killed_cores = [i for i, c in enumerate(cores) if c.killed]
    out.suspect_cores = [i for i, c in enumerate(cores) if c.suspect]
    out.stale_ignored = sum(c.stale_ignored for c in cores)
    out.verdicts_checked = len(verdicts)
    out.verdict_mismatches = sum(
        1 for seq, v in verdicts.items() if oracle.verdicts.get(seq) != v
    )
    out.divergence = monitor.report().to_dict()
    out.golden_digest = golden
    out.final_digests = final_digests
    out.live_cores = live
    out.digest_equal = all(final_digests[i] == golden for i in live)
    out.undetected_divergences = sum(
        1
        for i in live
        if final_digests[i] != golden
        and not cores[i].flagged
        and i not in monitor.flagged_cores
    )
    return out
