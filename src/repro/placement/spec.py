"""PlacementSpec: the frozen tenancy/placement knob on a Scenario.

Mirrors :class:`repro.faults.FaultSpec`: a frozen dataclass of JSON
scalars with a ``canonical_dict`` that participates in the scenario
content hash — two scenarios differing only in placement never share a
cache entry or a baseline point.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Optional, Union

from ..state.cuckoo import _fnv1a, _key_bytes

__all__ = ["PlacementSpec", "tenant_of"]

_TENANT_SALT = 0x7E6A4E7B


def tenant_of(key: Hashable, num_tenants: int, seed: int = 0) -> int:
    """Deterministic tenant owning a flow key (seeded FNV-1a bucket).

    The simulator has no tenant column on its packets, so tenancy is a
    pure function of the flow key — reproducible across probes, workers,
    and runs, which is what the quota drop-cause accounting needs.
    """
    if num_tenants < 1:
        raise ValueError("num_tenants must be positive")
    if num_tenants == 1:
        return 0
    return _fnv1a(_key_bytes(key), seed ^ _TENANT_SALT) % num_tenants


@dataclasses.dataclass(frozen=True)
class PlacementSpec:
    """Frozen placement/tenancy configuration (all JSON scalars).

    ``promote_threshold`` > ``demote_threshold`` is the hysteresis band:
    a flow is promoted to SCR when its estimated packet count reaches the
    former and demoted back to RSS only when periodic decay drags the
    estimate below the latter — flows hovering at one threshold cannot
    flap.  See docs/MULTITENANT.md for the model.
    """

    #: tenants sharing the data plane (keys are namespaced per tenant).
    num_tenants: int = 1
    #: max resident state entries per tenant (None: unlimited).
    tenant_quota: Optional[int] = None
    #: how many flows may hold SCR placement at once (sequencer capacity).
    max_elephants: int = 4
    #: estimated packets at which a flow is promoted to SCR.
    promote_threshold: int = 64
    #: estimated packets below which a promoted flow is demoted to RSS.
    demote_threshold: int = 16
    #: observations between sketch halvings (the demotion clock).
    decay_interval: int = 4096
    #: count-min geometry.
    sketch_width: int = 1024
    sketch_depth: int = 4
    #: seeds sketch rows, shard selection, and tenant assignment.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1 (or None)")
        if self.max_elephants < 1:
            raise ValueError("max_elephants must be >= 1")
        if self.promote_threshold < 1:
            raise ValueError("promote_threshold must be >= 1")
        if not 0 <= self.demote_threshold < self.promote_threshold:
            raise ValueError(
                "demote_threshold must satisfy "
                "0 <= demote < promote (the hysteresis band)"
            )
        if self.decay_interval < 1:
            raise ValueError("decay_interval must be >= 1")
        if self.sketch_width < 1 or self.sketch_depth < 1:
            raise ValueError("sketch geometry must be positive")

    @classmethod
    def create(
        cls,
        num_tenants: int = 1,
        tenant_quota: Optional[int] = None,
        **kwargs: Union[int, None],
    ) -> "PlacementSpec":
        return cls(num_tenants=num_tenants, tenant_quota=tenant_quota,
                   **kwargs)  # type: ignore[arg-type]

    def canonical_dict(self) -> Dict[str, Union[int, None]]:
        """JSON-stable content for the scenario hash (sorted by key)."""
        return {
            "decay_interval": self.decay_interval,
            "demote_threshold": self.demote_threshold,
            "max_elephants": self.max_elephants,
            "num_tenants": self.num_tenants,
            "promote_threshold": self.promote_threshold,
            "seed": self.seed,
            "sketch_depth": self.sketch_depth,
            "sketch_width": self.sketch_width,
            "tenant_quota": self.tenant_quota,
        }

    def describe(self) -> str:
        quota = "∞" if self.tenant_quota is None else str(self.tenant_quota)
        return (
            f"placement(tenants={self.num_tenants}, quota={quota}, "
            f"elephants<={self.max_elephants}, "
            f"promote@{self.promote_threshold}/demote@{self.demote_threshold})"
        )
