"""Online elephant/mice classification: count-min + hysteresis.

Per-flow exact counters are exactly what a million-flow data plane cannot
afford, so the classification path reads a :class:`CountMinSketch` (one
conservative-update increment per packet, estimates never under-count)
and keeps only the *promoted* flows in an exact candidate set — the
space-saving shape: O(sketch + max_elephants) memory regardless of flow
count.

Placement must not flap: a flow oscillating around one threshold would
otherwise migrate its state back and forth every few packets, and the
migration cost would swamp the benefit.  Two mechanisms prevent that:

* **threshold hysteresis** — promotion at ``promote_threshold`` estimated
  packets, demotion only below the strictly smaller ``demote_threshold``;
* **periodic decay** — every ``decay_interval`` observations the sketch
  halves, so estimates track *recent* rate; demotion is evaluated only at
  decay boundaries, bounding migrations per epoch.

Everything is a pure function of (seed, packet stream): no clocks, no
process RNG, no module state — the classifier passes the same SCR004
lint bar as the engines it steers for, which is what makes ``--jobs N``
artifacts byte-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Tuple

from ..state.cuckoo import _fnv1a, _key_bytes
from .spec import PlacementSpec

__all__ = ["CountMinSketch", "ElephantClassifier", "PlacementEvent"]

PROMOTE = "promote"
DEMOTE = "demote"


@dataclasses.dataclass(frozen=True)
class PlacementEvent:
    """One placement change: ``kind`` is ``"promote"`` or ``"demote"``."""

    kind: str
    key: Hashable


class CountMinSketch:
    """Seeded count-min sketch with conservative update and halving decay.

    Row indexes derive from one 64-bit FNV-1a hash by double hashing
    (``h1 + i·h2``), so the per-packet cost is a single byte-level hash no
    matter the depth.  Conservative update increments only the minimal
    counters, tightening the classic over-count without breaking the
    "never under-counts" guarantee promotions rely on.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self._seed = seed
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]

    def _indexes(self, data: bytes) -> List[int]:
        h = _fnv1a(data, self._seed)
        h1 = h & 0xFFFFFFFF
        h2 = ((h >> 32) | 1) & 0xFFFFFFFF
        return [(h1 + i * h2) % self.width for i in range(self.depth)]

    def add(self, data: bytes, count: int = 1) -> int:
        """Record ``count`` observations; returns the updated estimate."""
        idxs = self._indexes(data)
        rows = self._rows
        current = min(rows[i][idx] for i, idx in enumerate(idxs))
        target = current + count
        for i, idx in enumerate(idxs):
            if rows[i][idx] < target:
                rows[i][idx] = target
        return target

    def estimate(self, data: bytes) -> int:
        idxs = self._indexes(data)
        return min(self._rows[i][idx] for i, idx in enumerate(idxs))

    def decay(self) -> None:
        """Halve every counter (the aging clock demotion runs on)."""
        for row in self._rows:
            for i, value in enumerate(row):
                if value:
                    row[i] = value >> 1

    def reset(self) -> None:
        for row in self._rows:
            for i in range(len(row)):
                row[i] = 0


class ElephantClassifier:
    """Promote/demote flows between SCR and RSS placement, deterministically.

    ``observe(key)`` is the per-packet entry point: it records the packet
    in the sketch and returns the flow's placement *after* this packet
    plus any :class:`PlacementEvent` that fired on it (so the engine can
    charge migration cost on exactly the packet that caused it).
    ``is_promoted(key)`` is the read-only probe for pre-steer paths that
    must not observe (e.g. wire-length accounting).
    """

    def __init__(self, spec: PlacementSpec) -> None:
        self.spec = spec
        self.sketch = CountMinSketch(
            width=spec.sketch_width, depth=spec.sketch_depth, seed=spec.seed
        )
        #: insertion-ordered promoted set (iteration order is deterministic).
        self._promoted: Dict[Hashable, bool] = {}
        self._key_bytes: Dict[Hashable, bytes] = {}
        self.observations = 0
        self.promotions = 0
        self.demotions = 0
        self.decays = 0

    def _bytes_for(self, key: Hashable) -> bytes:
        cached = self._key_bytes.get(key)
        if cached is None:
            cached = _key_bytes(key)
            self._key_bytes[key] = cached
        return cached

    def is_promoted(self, key: Hashable) -> bool:
        return key in self._promoted

    @property
    def promoted_count(self) -> int:
        return len(self._promoted)

    def observe(self, key: Hashable) -> Tuple[bool, Tuple[PlacementEvent, ...]]:
        """Record one packet of ``key``; returns (promoted_after, events)."""
        spec = self.spec
        self.observations += 1
        events: List[PlacementEvent] = []
        if self.observations % spec.decay_interval == 0:
            self.sketch.decay()
            self.decays += 1
            # Demotion is evaluated only here: a promoted flow must decay
            # below the lower hysteresis threshold to lose SCR placement,
            # so placement cannot flap between consecutive packets.
            for promoted in list(self._promoted):
                est = self.sketch.estimate(self._bytes_for(promoted))
                if est < spec.demote_threshold:
                    del self._promoted[promoted]
                    self.demotions += 1
                    events.append(PlacementEvent(DEMOTE, promoted))
        estimate = self.sketch.add(self._bytes_for(key))
        if key in self._promoted:
            return True, tuple(events)
        if (
            estimate >= spec.promote_threshold
            and len(self._promoted) < spec.max_elephants
        ):
            self._promoted[key] = True
            self.promotions += 1
            events.append(PlacementEvent(PROMOTE, key))
            return True, tuple(events)
        return False, tuple(events)

    def snapshot(self) -> Dict[str, int]:
        """Counters for telemetry / the engine's placement summary."""
        return {
            "observations": self.observations,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "decays": self.decays,
            "promoted_now": len(self._promoted),
        }

    def reset(self) -> None:
        """Back to the initial state (engines reset between MLFFR probes)."""
        self.sketch.reset()
        self._promoted.clear()
        self.observations = 0
        self.promotions = 0
        self.demotions = 0
        self.decays = 0
