"""Flow placement for multi-tenant scale-out (docs/MULTITENANT.md).

The paper parallelizes *one* hot flow; a production data plane serves
millions of flows where only a handful are elephants.  This package
decides, online and deterministically, which flows earn SCR replication
and which stay on plain RSS sharding:

* :class:`CountMinSketch` — the approximate per-flow packet counter the
  classification path reads (one sketch update per packet, never a per-flow
  exact counter at million-flow scale);
* :class:`ElephantClassifier` — space-saving candidate tracking over the
  sketch with promote/demote **hysteresis** and periodic decay, so
  placement never flaps on flows oscillating around the threshold;
* :class:`PlacementSpec` — the frozen, content-hashed scenario knob that
  configures both (tenancy, quotas, thresholds, sketch geometry).

Everything is seeded and pure: the same seed and packet stream produce
the same promotions on every run, at every MLFFR probe rate, and under
any ``--jobs N`` (the SCR004 hygiene bar engines are held to).
"""

from .classifier import CountMinSketch, ElephantClassifier, PlacementEvent
from .spec import PlacementSpec, tenant_of

__all__ = [
    "CountMinSketch",
    "ElephantClassifier",
    "PlacementEvent",
    "PlacementSpec",
    "tenant_of",
]
