"""Command-line interface: ``python -m repro.cli <subcommand>``.

Subcommands:

* ``programs``   — list the packet programs and their Table 1 properties.
* ``synthesize`` — build a workload trace and write it (SCRT or pcap).
* ``run``        — functional SCR run over a trace; verifies replica
  consistency against the single-threaded reference.
* ``mlffr``      — one MLFFR throughput measurement.
* ``sweep``      — throughput-vs-cores sweep across techniques, with
  optional CSV export.
* ``hardware``   — sequencer capacity/resources (Tofino + NetFPGA).
* ``inspect``    — summarize a ``--telemetry`` run artifact directory.
* ``bench``      — run the perf-regression suite (``BENCH_*.json``
  artifacts) or, with ``--compare OLD NEW``, gate NEW against a baseline
  with noise-aware thresholds (nonzero exit on regression).
* ``chaos``      — run the curated fault-injection matrix (repro.faults):
  gap detection, recovery, and MLFFR-vs-drop-rate, written as a
  ``BENCH_chaos_recovery.json`` artifact (exit 1 if the gate fails).
* ``report``     — render one self-contained HTML dashboard from any mix
  of telemetry artifact directories and ``BENCH_*.json`` files
  (drop-cause Pareto, SLO table, span waterfalls, MLFFR curves);
  byte-deterministic for identical inputs.
* ``lint``       — scrlint: SCR-safety static analysis of the program zoo,
  the scaling engines, the fault/recovery subsystem, and the
  observability layer (rules SCR001–SCR006; exit 1 on findings).

``run``, ``mlffr``, and ``sweep`` accept ``--telemetry DIR``: the run is
instrumented (event trace, metrics, latency histograms) and a
:class:`~repro.telemetry.artifact.RunArtifact` is written under ``DIR``.
``mlffr`` and ``sweep`` (the simulator paths) additionally accept
``--trace-sample RATE``: causal ``span.*`` events are recorded for a
deterministic sample of packet indices (see :mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench import ExperimentRunner, render_scaling_series, render_table
from .bench.export import scaling_points_to_csv
from .core import ScrFunctionalEngine, reference_run
from .cpu.columnar import HOTPATH_ENV, HOTPATH_MODES
from .parallel import TECHNIQUES
from .programs import make_program, program_names, table1_rows
from .sequencer import NetFpgaSequencerModel, TofinoSequencerModel
from .telemetry import NULL_TELEMETRY, Telemetry, summarize_artifact
from .traffic import TRACE_DISTRIBUTIONS, Trace, read_pcap, synthesize_trace, write_pcap

__all__ = ["main", "build_parser"]


def _add_hotpath_arg(p: argparse.ArgumentParser) -> None:
    """``--hotpath`` on every simulating subcommand.

    ``main`` exports the choice through :data:`HOTPATH_ENV` so ``--jobs``
    worker processes inherit it (docs/HOTPATH.md).
    """
    p.add_argument(
        "--hotpath",
        choices=list(HOTPATH_MODES),
        default=None,
        help="simulator inner loop: columnar batch math (default) or the "
        "scalar reference event loop (results are bit-identical)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="State-compute replication (NSDI 2025) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("programs", help="list registered packet programs")

    p = sub.add_parser("synthesize", help="synthesize a workload trace")
    p.add_argument("--workload", choices=sorted(TRACE_DISTRIBUTIONS), default="univ_dc")
    p.add_argument("--flows", type=int, default=50)
    p.add_argument("--packets", type=int, default=5000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--bidirectional", action="store_true")
    p.add_argument("--out", required=True, help=".scrt or .pcap output path")

    p = sub.add_parser("run", help="functional SCR run with verification")
    p.add_argument("--program", choices=program_names(), default="port_knocking")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--trace-file", help="SCRT/pcap trace to replay")
    p.add_argument("--workload", choices=sorted(TRACE_DISTRIBUTIONS), default="univ_dc")
    p.add_argument("--flows", type=int, default=30)
    p.add_argument("--tenants", type=int, default=1,
                   help="partition flows across this many tenants and "
                        "report the occupancy split (repro.placement)")
    p.add_argument("--packets", type=int, default=2000)
    p.add_argument("--loss-rate", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed trace cache (see docs/BENCHMARKS.md)")
    p.add_argument("--telemetry", metavar="DIR",
                   help="instrument the run and write a run artifact here")
    p.add_argument("--hostprof", metavar="DIR",
                   help="profile host wall time and write a hostprof "
                        "artifact here (see docs/PROFILING.md)")
    _add_hotpath_arg(p)

    p = sub.add_parser("mlffr", help="measure MLFFR throughput")
    p.add_argument("--program", choices=program_names(), default="ddos")
    p.add_argument("--workload", choices=sorted(TRACE_DISTRIBUTIONS) + ["single-flow"],
                   default="univ_dc")
    p.add_argument("--technique", choices=list(TECHNIQUES),
                   default="scr")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--flows", type=int, default=60)
    p.add_argument("--packets", type=int, default=4000)
    p.add_argument("--tenants", type=int, default=1,
                   help="tenants sharing the data plane; >1 attaches a "
                        "PlacementSpec (hybrid placement, repro.placement)")
    p.add_argument("--tenant-quota", type=int, default=None, metavar="N",
                   help="max resident state entries per tenant "
                        "(default: unlimited)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed trace cache (see docs/BENCHMARKS.md)")
    p.add_argument("--telemetry", metavar="DIR",
                   help="instrument the run and write a run artifact here")
    p.add_argument("--trace-sample", type=float, default=0.0, metavar="RATE",
                   help="with --telemetry: span-trace this fraction of "
                        "packet indices (deterministic; default 0)")
    p.add_argument("--hostprof", metavar="DIR",
                   help="profile host wall time and write a hostprof "
                        "artifact here (see docs/PROFILING.md)")
    _add_hotpath_arg(p)

    p = sub.add_parser("sweep", help="throughput-vs-cores sweep")
    p.add_argument("--program", choices=program_names(), default="ddos")
    p.add_argument("--workload", choices=sorted(TRACE_DISTRIBUTIONS) + ["single-flow"],
                   default="univ_dc")
    # No argparse choices here: Scenario.create validates names and its
    # "unknown technique" error (listing every valid name) is the contract.
    p.add_argument("--techniques", nargs="+",
                   default=["scr", "shared", "rss", "rss++"])
    p.add_argument("--cores", nargs="+", type=int, default=[1, 2, 4, 7])
    p.add_argument("--flows", type=int, default=60)
    p.add_argument("--packets", type=int, default=4000)
    p.add_argument("--tenants", type=int, default=1,
                   help="tenants sharing the data plane; >1 attaches a "
                        "PlacementSpec (hybrid placement, repro.placement)")
    p.add_argument("--tenant-quota", type=int, default=None, metavar="N",
                   help="max resident state entries per tenant "
                        "(default: unlimited)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (results identical to --jobs 1)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed trace cache (see docs/BENCHMARKS.md)")
    p.add_argument("--csv", help="write results to this CSV path")
    p.add_argument("--telemetry", metavar="DIR",
                   help="instrument the run and write a run artifact here")
    p.add_argument("--trace-sample", type=float, default=0.0, metavar="RATE",
                   help="with --telemetry: span-trace this fraction of "
                        "packet indices (deterministic; default 0)")
    p.add_argument("--hostprof", metavar="DIR",
                   help="profile host wall time and write a hostprof "
                        "artifact here (see docs/PROFILING.md)")
    _add_hotpath_arg(p)

    p = sub.add_parser("hardware", help="sequencer capacity and resources")
    p.add_argument("--rows", type=int, default=16, help="NetFPGA history rows")

    p = sub.add_parser("reproduce", help="re-measure a paper figure")
    p.add_argument("figure", help='figure id, e.g. "1", "6e", "7", "10a", or "list"')
    p.add_argument("--packets", type=int, default=4000)
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (results identical to --jobs 1)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed trace cache (see docs/BENCHMARKS.md)")
    p.add_argument("--csv", help="write the series to this CSV path")
    _add_hotpath_arg(p)

    p = sub.add_parser("inspect", help="summarize a telemetry run artifact")
    p.add_argument("dir", help="artifact directory (or manifest.json path)")

    p = sub.add_parser(
        "report", help="render an HTML dashboard from artifacts"
    )
    p.add_argument("inputs", nargs="+", metavar="INPUT",
                   help="telemetry artifact directories and/or "
                        "BENCH_*.json files")
    p.add_argument("--out", default="report.html", metavar="PATH",
                   help="output HTML path (default report.html)")

    p = sub.add_parser(
        "bench", help="perf-regression bench suite and compare gate"
    )
    p.add_argument("--list", action="store_true", help="list the suites")
    p.add_argument("--suite", action="append", metavar="NAME",
                   help="suite(s) to run (default: all); repeatable")
    p.add_argument("--out", default="results/bench", metavar="DIR",
                   help="directory for BENCH_*.json artifacts")
    p.add_argument("--reps", type=int, default=3,
                   help="repetitions per point (median + MAD reported)")
    p.add_argument("--seed", type=int, default=None,
                   help="override the pinned base seed (breaks baseline "
                        "comparability; recorded in the artifact)")
    p.add_argument("--full", action="store_true",
                   help="paper-scale grids instead of the quick suite")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (artifacts identical to --jobs 1)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed trace cache (see docs/BENCHMARKS.md)")
    p.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                   help="compare two artifacts/directories instead of running")
    p.add_argument("--markdown", metavar="PATH",
                   help="with --compare: also write the report to PATH")
    p.add_argument("--rel-tol", type=float, default=None,
                   help="relative significance band (default 0.05)")
    p.add_argument("--noise-mult", type=float, default=None,
                   help="multiplier on summed MADs (default 3.0)")
    p.add_argument("--hostprof", metavar="DIR",
                   help="profile host wall time of the suite runs and "
                        "write a hostprof artifact here")
    _add_hotpath_arg(p)

    p = sub.add_parser(
        "profile",
        help="host wall-clock profile of one scenario (repro.hostprof)",
    )
    p.add_argument("--program", choices=program_names(), default="ddos")
    p.add_argument("--workload",
                   choices=sorted(TRACE_DISTRIBUTIONS) + ["single-flow"],
                   default="univ_dc")
    p.add_argument("--technique", choices=list(TECHNIQUES),
                   default="scr")
    p.add_argument("--cores", type=int, default=4)
    p.add_argument("--packets", type=int, default=2000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--deep", action="store_true",
                   help="also capture cProfile function stats and "
                        "tracemalloc per-phase allocation peaks (slow)")
    p.add_argument("--top", type=int, default=12,
                   help="phase-Pareto rows to print (default 12)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed trace cache (see docs/BENCHMARKS.md)")
    p.add_argument("--out", default="results/hostprof", metavar="DIR",
                   help="artifact directory (hostprof.json, profile.folded, "
                        "profile.speedscope.json)")
    _add_hotpath_arg(p)

    p = sub.add_parser(
        "chaos", help="fault-injection matrix: detection, recovery, MLFFR"
    )
    p.add_argument("--seed", type=int, default=7,
                   help="fault-plan and workload seed (default 7)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the MLFFR sweep "
                        "(artifact byte-identical to --jobs 1)")
    p.add_argument("--out", default="results/chaos", metavar="DIR",
                   help="directory for the BENCH_chaos_recovery.json artifact")
    p.add_argument("--full", action="store_true",
                   help="longer traces (2000/3000 packets) instead of quick")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="content-addressed trace cache (see docs/BENCHMARKS.md)")
    _add_hotpath_arg(p)

    p = sub.add_parser(
        "lint", help="SCR-safety static analysis (scrlint, SCR001–SCR007)"
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files/directories to lint "
                        "(default: programs, parallel, faults)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text",
                   help="report format (json is what CI archives; sarif "
                        "feeds code-scanning UIs)")
    p.add_argument("--select", metavar="RULE[,RULE]",
                   help="run only these rules (e.g. SCR007 or scr1,scr5)")
    p.add_argument("--ignore", metavar="RULE[,RULE]",
                   help="skip these rules")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered rules and exit")

    p = sub.add_parser(
        "advise",
        help="predict the best parallelization technique per program "
             "(static dataflow facts + Appendix A cost model)",
    )
    p.add_argument("--program", action="append", dest="programs",
                   choices=program_names(), metavar="NAME",
                   help="advise only this program (repeatable; "
                        "default: all registered programs)")
    p.add_argument("--facts-only", action="store_true",
                   help="emit the static state-facts document and skip "
                        "the cost-model scoring")
    p.add_argument("--bench", metavar="BENCH.json",
                   help="take d/c1/c2/t from this artifact's embedded "
                        "table4_params instead of the built-in Table 4")
    p.add_argument("--workload", choices=sorted(TRACE_DISTRIBUTIONS) + ["single-flow"],
                   default="univ_dc")
    p.add_argument("--flows", type=int, default=40)
    p.add_argument("--packets", type=int, default=1500)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--cores", nargs="+", type=int,
                   default=[1, 2, 3, 4, 5, 6, 7, 8],
                   help="core counts to predict; the winner is decided "
                        "at the largest")
    p.add_argument("--format", choices=["text", "json"], default="text")

    p = sub.add_parser("validate", help="check a program's SCR safety")
    p.add_argument("--program", choices=program_names(), required=True)
    p.add_argument("--workload", choices=sorted(TRACE_DISTRIBUTIONS), default="univ_dc")
    p.add_argument("--flows", type=int, default=20)
    p.add_argument("--packets", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)

    return parser


def _cache_for(args) -> "Optional[TraceCache]":
    from .scenario import TraceCache

    if getattr(args, "cache_dir", None):
        return TraceCache(args.cache_dir)
    return None


def _placement_for(args):
    """A PlacementSpec when ``--tenants``/``--tenant-quota`` were given,
    else None (single-tenant scenarios carry no placement config).  May
    raise ValueError; callers report it like Scenario.create's errors."""
    from .placement import PlacementSpec

    tenants = getattr(args, "tenants", 1)
    quota = getattr(args, "tenant_quota", None)
    if tenants == 1 and quota is None:
        return None
    return PlacementSpec(num_tenants=tenants, tenant_quota=quota)


def _load_or_synthesize(args, cache=None, hostprof=None) -> Trace:
    from .hostprof import NULL_HOSTPROF
    from .scenario import StackBuilder, TraceSpec

    if getattr(args, "trace_file", None):
        path = args.trace_file
        if path.endswith(".pcap"):
            return read_pcap(path)
        return Trace.load(path)
    program = make_program(args.program) if hasattr(args, "program") else None
    bidirectional = bool(program.bidirectional) if program else False
    spec = TraceSpec(
        workload=args.workload,
        num_flows=args.flows,
        max_packets=args.packets,
        seed=args.seed,
        bidirectional=bidirectional or getattr(args, "bidirectional", False),
        packet_size=None,
    )
    cache = cache if cache is not None else _cache_for(args)
    builder = StackBuilder(
        cache, hostprof=hostprof if hostprof is not None else NULL_HOSTPROF
    )
    return builder.trace(spec)


def cmd_programs(args, out) -> int:
    rows = table1_rows()
    print(render_table(
        ["program", "metadata (B)", "RSS fields", "atomics vs locks"],
        [[r["program"], r["metadata_bytes"], r["rss_fields"], r["atomics_or_locks"]]
         for r in rows],
        title="Table 1 programs",
    ), file=out)
    extensions = sorted(set(program_names()) - {r["program"] for r in rows})
    print(f"extensions: {', '.join(extensions)}", file=out)
    return 0


def cmd_synthesize(args, out) -> int:
    trace = synthesize_trace(
        TRACE_DISTRIBUTIONS[args.workload](),
        args.flows,
        seed=args.seed,
        bidirectional=args.bidirectional,
        max_packets=args.packets,
    )
    if args.out.endswith(".pcap"):
        write_pcap(trace, args.out)
    else:
        trace.save(args.out)
    stats = trace.stats(bidirectional=args.bidirectional)
    print(f"wrote {stats.packets} packets / {stats.flows} flows to {args.out} "
          f"(top flow {stats.top_flow_share:.0%})", file=out)
    return 0


def _telemetry_for(args) -> Telemetry:
    """An enabled Telemetry when ``--telemetry DIR`` was given, else no-op.

    ``--trace-sample RATE`` attaches a span emitter keyed on the run's
    seed, so which packets carry a trace is the same in every process.
    """
    if not getattr(args, "telemetry", None):
        return NULL_TELEMETRY
    tele = Telemetry()
    rate = getattr(args, "trace_sample", 0.0) or 0.0
    if rate > 0.0:
        from .obs import SpanEmitter, SpanSampler

        seed = getattr(args, "seed", 0) or 0
        tele.spans = SpanEmitter(tele.tracer, SpanSampler(seed, rate))
    return tele


def _config_from(args, *names) -> dict:
    return {name: getattr(args, name) for name in names if hasattr(args, name)}


def _hostprof_for(args):
    """An enabled PhaseClock when ``--hostprof DIR`` was given, else the
    shared disabled singleton (one dormant branch per guard)."""
    from .hostprof import NULL_HOSTPROF, PhaseClock

    if getattr(args, "hostprof", None):
        return PhaseClock(enabled=True)
    return NULL_HOSTPROF


def _finish_hostprof(hp, args, out) -> bool:
    """Write the hostprof artifact; returns False (with a message) on I/O
    failure.  No-op for the disabled singleton."""
    if not hp.enabled:
        return True
    from .hostprof import HostProfile

    profile = HostProfile.create(
        command=args.command,
        config=_config_from(
            args, "program", "workload", "technique", "techniques",
            "cores", "packets", "flows", "tenants", "seed", "jobs", "suite",
        ),
        clock=hp,
    )
    try:
        path = profile.save(args.hostprof)
    except OSError as exc:
        print(f"error: cannot write host profile to "
              f"{args.hostprof!r}: {exc}", file=out)
        return False
    print(f"host profile: {path} ({len(profile.phases)} phases, "
          f"{profile.total_wall_ns() / 1e6:.1f} ms wall)", file=out)
    return True


def _record_cache_metrics(tele, cache) -> None:
    """Fold the serial-path TraceCache counters into the run's registry so
    `scr-repro inspect` can report hit/miss/corrupt-evict rates.  Parallel
    workers hold their own cache objects; their counters stay worker-local
    (the artifact then simply predates the counters, which inspect notes
    gracefully)."""
    if cache is None or not tele.enabled:
        return
    stats = cache.stats()
    reg = tele.registry
    reg.counter(
        "trace_cache_hits", help="TraceCache hits (trace + perf-trace loads)"
    ).inc(stats["hits"])
    reg.counter(
        "trace_cache_misses", help="TraceCache misses (absent entries)"
    ).inc(stats["misses"])
    reg.counter(
        "trace_cache_corrupt_evictions",
        help="TraceCache entries deleted as corrupt/poisoned (self-heal)",
    ).inc(stats["corrupt_evictions"])


def _finish_telemetry(tele, args, out, num_cores, extra_metrics=None) -> bool:
    """Write the run artifact; returns False (with a message) on I/O failure."""
    if not tele.enabled:
        return True
    try:
        artifact = tele.write_artifact(
            args.telemetry,
            command=args.command,
            config=_config_from(
                args, "program", "workload", "technique", "techniques",
                "cores", "packets", "flows", "tenants", "tenant_quota",
                "loss_rate", "seed", "trace_sample",
            ),
            extra_metrics=extra_metrics,
            num_cores=num_cores,
        )
    except OSError as exc:
        print(f"error: cannot write telemetry artifact to "
              f"{args.telemetry!r}: {exc}", file=out)
        return False
    print(f"telemetry artifact: {args.telemetry} "
          f"({artifact.events_emitted} events, "
          f"{len(artifact.event_type_counts)} types)", file=out)
    return True


def cmd_run(args, out) -> int:
    if args.tenants < 1:
        print(f"error: --tenants must be >= 1, got {args.tenants}", file=out)
        return 2
    cache = _cache_for(args)
    hp = _hostprof_for(args)
    trace = _load_or_synthesize(args, cache=cache, hostprof=hp)
    tele = _telemetry_for(args)
    engine = ScrFunctionalEngine(
        make_program(args.program),
        num_cores=args.cores,
        with_recovery=args.loss_rate > 0,
        loss_rate=args.loss_rate,
        seed=args.seed,
        tracer=tele.tracer,
    )
    with hp.phase("func.run"):
        result = engine.run(trace)
    with hp.phase("func.reference"):
        ref_verdicts, ref_state = reference_run(make_program(args.program), trace)
    consistent = result.replicas_consistent
    matches = (
        not result.lost_seqs
        and result.replica_snapshots[0] == ref_state
        and result.verdicts == ref_verdicts
    )
    print(f"program={args.program} cores={args.cores} "
          f"packets={result.offered} lost={len(result.lost_seqs)} "
          f"recovered={result.recovered}", file=out)
    print(f"replicas consistent: {consistent}", file=out)
    if not result.lost_seqs:
        print(f"matches single-threaded reference: {matches}", file=out)
    if args.tenants > 1:
        from .placement import tenant_of

        occupancy: dict = {}
        for flow in trace.flow_sizes():
            t = tenant_of(flow, args.tenants, args.seed)
            occupancy[t] = occupancy.get(t, 0) + 1
        print(f"tenants: {args.tenants} ({len(occupancy)} occupied, "
              f"busiest holds {max(occupancy.values())} flows)", file=out)
    if tele.enabled:
        reg = tele.registry
        reg.counter("packets_offered").inc(result.offered)
        reg.counter("packets_lost").inc(len(result.lost_seqs))
        reg.counter("packets_recovered").inc(result.recovered)
        reg.counter("packets_skipped").inc(result.skipped)
        reg.gauge("replicas_consistent").set(1.0 if consistent else 0.0)
        _record_cache_metrics(tele, cache)
        if not _finish_telemetry(tele, args, out, num_cores=args.cores):
            return 2
    if not _finish_hostprof(hp, args, out):
        return 2
    return 0 if consistent else 1


def _result_metrics(results) -> Optional[dict]:
    """Extra artifact metrics from the last instrumented scenario result."""
    extra = {}
    for result in results:
        if result.counters is not None:
            extra["counters"] = result.counters
        if result.latency_ns is not None:
            extra["latency_ns"] = result.latency_ns
    return extra or None


def cmd_mlffr(args, out) -> int:
    from .scenario import Scenario, ScenarioExecutor

    tele = _telemetry_for(args)
    hp = _hostprof_for(args)
    cache = _cache_for(args)
    try:
        scenario = Scenario.create(
            args.program, args.workload, args.technique, args.cores,
            num_flows=args.flows, max_packets=args.packets,
            placement=_placement_for(args),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    executor = ScenarioExecutor(
        cache=cache, telemetry=tele if tele.enabled else None, hostprof=hp
    )
    result = executor.run_one(scenario)
    print(f"{args.program} @ {args.workload}, {args.technique}, "
          f"{args.cores} cores: {result.mlffr_mpps:.2f} Mpps "
          f"({result.iterations} search iterations)", file=out)
    stats = result.placement_stats
    if stats is not None:
        print(f"placement: {stats['promotions']} promotions, "
              f"{stats['demotions']} demotions, "
              f"{stats['migrations']} migrations, "
              f"{stats['tenant_quota_drops_total']} quota drops", file=out)
    _record_cache_metrics(tele, cache)
    if not _finish_telemetry(tele, args, out, num_cores=args.cores,
                             extra_metrics=_result_metrics([result])):
        return 2
    if not _finish_hostprof(hp, args, out):
        return 2
    return 0


def cmd_sweep(args, out) -> int:
    from .bench.runner import ScalingPoint
    from .scenario import ScenarioExecutor, scenario_grid

    if args.jobs < 1:
        print("--jobs must be >= 1", file=out)
        return 2
    tele = _telemetry_for(args)
    try:
        grid = scenario_grid(
            args.program, args.workload, args.techniques, args.cores,
            num_flows=args.flows, max_packets=args.packets,
            placement=_placement_for(args),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    hp = _hostprof_for(args)
    cache = _cache_for(args)
    executor = ScenarioExecutor(
        jobs=args.jobs, cache=cache,
        telemetry=tele if tele.enabled else None,
        hostprof=hp,
    )
    results = executor.run(grid)
    points = [
        ScalingPoint(technique=s.technique, cores=s.cores,
                     mlffr_mpps=r.mlffr_mpps, iterations=r.iterations)
        for s, r in zip(grid, results)
    ]
    series = {}
    for p in points:
        series.setdefault(p.technique, []).append((p.cores, p.mlffr_mpps))
    print(render_scaling_series(
        series, title=f"{args.program} @ {args.workload} (Mpps)"
    ), file=out)
    if args.csv:
        path = scaling_points_to_csv(points, args.csv)
        print(f"wrote {path}", file=out)
    _record_cache_metrics(tele, cache)
    if not _finish_telemetry(tele, args, out, num_cores=max(args.cores),
                             extra_metrics=_result_metrics(results)):
        return 2
    if not _finish_hostprof(hp, args, out):
        return 2
    return 0


def cmd_hardware(args, out) -> int:
    tofino = TofinoSequencerModel()
    rows = []
    for name in program_names(stateful_only=True):
        prog = make_program(name)
        rows.append([name, prog.metadata_size, tofino.max_cores(prog)])
    print(render_table(
        ["program", "metadata (B)", "Tofino max cores"], rows,
        title=f"Tofino: {tofino.history_fields} 32-bit history fields",
    ), file=out)
    fpga = NetFpgaSequencerModel(args.rows)
    luts, _, ffs = fpga.synthesis_row()
    print(f"\nNetFPGA @ {args.rows} rows: {luts} LUTs "
          f"({fpga.lut_utilization_pct():.3f}%), {ffs} FFs "
          f"({fpga.ff_utilization_pct():.3f}%), "
          f"timing @250 MHz: {'met' if fpga.meets_timing() else 'NOT met'}, "
          f"{fpga.bandwidth_gbps():.0f} Gbit/s", file=out)
    return 0


def cmd_reproduce(args, out) -> int:
    from .bench.export import series_to_csv
    from .bench.figures import FIGURE_PRESETS, run_preset

    if args.figure == "list":
        for name, preset in FIGURE_PRESETS.items():
            print(f"{name:>4}  {preset.describe()}", file=out)
        return 0
    try:
        preset = FIGURE_PRESETS[args.figure]
    except KeyError:
        print(f"unknown figure {args.figure!r}; try 'reproduce list'", file=out)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=out)
        return 2
    runner = ExperimentRunner(max_packets=args.packets, cache=_cache_for(args))
    executor = None
    if args.jobs > 1:
        from .scenario import ScenarioExecutor

        executor = ScenarioExecutor(jobs=args.jobs, cache=_cache_for(args))
    series = run_preset(preset, runner, executor)
    print(render_scaling_series(series, title=f"{preset.describe()} (Mpps)"),
          file=out)
    if args.csv:
        path = series_to_csv(series, args.csv)
        print(f"wrote {path}", file=out)
    return 0


def cmd_inspect(args, out) -> int:
    import json
    from pathlib import Path

    path = Path(args.dir)
    if path.is_dir() and not (path / "manifest.json").exists():
        contents = "empty" if not any(path.iterdir()) else "no manifest.json"
        print(f"{args.dir!r} is not a telemetry run artifact ({contents}); "
              "produce one with run/mlffr/sweep --telemetry DIR", file=out)
        return 2
    try:
        print(summarize_artifact(args.dir), file=out)
    except (FileNotFoundError, NotADirectoryError):
        print(f"no run artifact at {args.dir!r} "
              "(expected a manifest.json written by --telemetry)", file=out)
        return 2
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"malformed run artifact at {args.dir!r}: {exc}", file=out)
        return 2
    except OSError as exc:
        print(f"cannot read run artifact at {args.dir!r}: {exc}", file=out)
        return 2
    return 0


def cmd_report(args, out) -> int:
    from .obs.report import write_report

    try:
        path = write_report(args.inputs, args.out)
    except ValueError as exc:
        print(f"report error: {exc}", file=out)
        return 2
    except OSError as exc:
        print(f"report error: cannot read/write: {exc}", file=out)
        return 2
    print(f"wrote {path}", file=out)
    return 0


def _cmd_bench_compare(args, out) -> int:
    from .perf import CompareError, compare_paths, markdown_report
    from .perf.compare import DEFAULT_NOISE_MULT, DEFAULT_REL_TOL

    old_path, new_path = args.compare
    try:
        results, extra = compare_paths(
            old_path, new_path,
            rel_tol=args.rel_tol if args.rel_tol is not None else DEFAULT_REL_TOL,
            noise_mult=(args.noise_mult if args.noise_mult is not None
                        else DEFAULT_NOISE_MULT),
        )
    except CompareError as exc:
        print(f"compare error: {exc}", file=out)
        return 2
    except (OSError, ValueError, KeyError) as exc:
        print(f"compare error: cannot load artifacts: {exc}", file=out)
        return 2
    report = markdown_report(results, extra_artifacts=extra)
    print(report, file=out)
    if args.markdown:
        from pathlib import Path

        md = Path(args.markdown)
        md.parent.mkdir(parents=True, exist_ok=True)
        md.write_text(report)
        print(f"wrote {md}", file=out)
    regressed = any(r.verdict == "regression" for r in results)
    return 1 if regressed else 0


def cmd_bench(args, out) -> int:
    from .perf import BASE_SEED, SuiteParams, run_suite, suite_names

    if args.list:
        for name in suite_names():
            print(name, file=out)
        return 0
    if args.compare:
        return _cmd_bench_compare(args, out)
    names = args.suite or suite_names()
    unknown = sorted(set(names) - set(suite_names()))
    if unknown:
        print(f"unknown suite(s): {', '.join(unknown)}; "
              f"available: {', '.join(suite_names())}", file=out)
        return 2
    if args.reps < 1:
        print("--reps must be >= 1", file=out)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=out)
        return 2
    hp = _hostprof_for(args)
    params = SuiteParams(
        reps=args.reps,
        base_seed=args.seed if args.seed is not None else BASE_SEED,
        quick=not args.full,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        hostprof=hp,
    )
    for name in names:
        with hp.phase(f"suite.{name}"):
            artifact = run_suite(name, params)
        try:
            path = artifact.save(args.out)
        except OSError as exc:
            print(f"error: cannot write bench artifact to "
                  f"{args.out!r}: {exc}", file=out)
            return 2
        npoints = sum(len(s.points) for s in artifact.series.values())
        print(f"{path}: {len(artifact.series)} series, {npoints} points, "
              f"{params.reps} reps (seeds {params.rep_seeds})", file=out)
    if not _finish_hostprof(hp, args, out):
        return 2
    return 0


def cmd_profile(args, out) -> int:
    """One scenario, MLFFR-measured with host wall-clock phases on.

    Simulated results are bit-identical to an unprofiled run (the clock
    never feeds simulated time); the artifact answers "where does the
    harness's real time go" — see docs/PROFILING.md.
    """
    from .hostprof import DeepCapture, HostProfile, PhaseClock
    from .scenario import Scenario, ScenarioExecutor

    clock = PhaseClock(enabled=True)
    deep = None
    if args.deep:
        deep = DeepCapture()
        deep.attach(clock)
        deep.start()
    try:
        scenario = Scenario.create(
            args.program, args.workload, args.technique, args.cores,
            max_packets=args.packets, seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    executor = ScenarioExecutor(cache=_cache_for(args), hostprof=clock)
    result = executor.run_one(scenario)
    if deep is not None:
        deep.stop()
    profile = HostProfile.create(
        command="profile",
        config=_config_from(args, "program", "workload", "technique",
                            "cores", "packets", "seed", "deep"),
        clock=clock,
        deep=deep.snapshot() if deep is not None else None,
    )
    try:
        path = profile.save(args.out)
    except OSError as exc:
        print(f"error: cannot write host profile to {args.out!r}: {exc}",
              file=out)
        return 2
    print(f"{args.program} @ {args.workload}, {args.technique}, "
          f"{args.cores} cores: {result.mlffr_mpps:.2f} Mpps "
          f"({result.iterations} search iterations)", file=out)
    print(f"host wall: {profile.total_wall_ns() / 1e6:.1f} ms across "
          f"{len(profile.phases)} phases", file=out)
    for line in profile.pareto_lines(top=args.top):
        print(f"  {line}", file=out)
    print(f"wrote {path} (+ profile.folded, profile.speedscope.json)",
          file=out)
    return 0


def cmd_chaos(args, out) -> int:
    from .faults.matrix import ChaosMatrixParams, run_chaos_matrix

    if args.jobs < 1:
        print("--jobs must be >= 1", file=out)
        return 2
    report = run_chaos_matrix(ChaosMatrixParams(
        seed=args.seed,
        jobs=args.jobs,
        quick=not args.full,
        cache_dir=args.cache_dir,
    ))
    for line in report.summary_lines():
        print(line, file=out)
    artifact = report.artifact
    assert artifact is not None
    try:
        path = artifact.save(args.out)
    except OSError as exc:
        print(f"error: cannot write chaos artifact to {args.out!r}: {exc}",
              file=out)
        return 2
    print(f"wrote {path}", file=out)
    return 0 if report.ok else 1


def _split_rule_ids(raw) -> "List[str]":
    """``SCR001,scr5`` / repeated flags → a flat list of tokens."""
    out: List[str] = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if chunk:
            out.append(chunk)
    return out


def cmd_lint(args, out) -> int:
    from .analysis import (
        all_rules,
        format_json,
        format_sarif,
        format_text,
        get_rule,
        lint_paths,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}  [{rule.paper_ref}]", file=out)
        return 0
    rules = all_rules()
    try:
        if args.select:
            rules = [get_rule(r) for r in _split_rule_ids(args.select)]
        if args.ignore:
            dropped = {get_rule(r).id for r in _split_rule_ids(args.ignore)}
            rules = [r for r in rules if r.id not in dropped]
    except KeyError as exc:
        # get_rule's message includes near-miss suggestions (scr7 → SCR007).
        print(f"lint error: {exc.args[0]}", file=out)
        return 2
    if not rules:
        print("lint error: --select/--ignore left no rules to run", file=out)
        return 2
    try:
        report = lint_paths(args.paths or None, rules=rules)
    except FileNotFoundError as exc:
        print(f"lint error: {exc}", file=out)
        return 2
    except OSError as exc:
        print(f"lint error: cannot read sources: {exc}", file=out)
        return 2
    if args.format == "json":
        print(format_json(report), file=out)
    elif args.format == "sarif":
        print(format_sarif(report, rules), file=out)
    else:
        print(format_text(report), file=out)
    return 0 if report.ok else 1


def cmd_advise(args, out) -> int:
    import json as _json

    from .perf.advise import (
        advice_report,
        advise_programs,
        facts_report,
        load_bench_costs,
    )

    programs = args.programs or None
    if args.facts_only:
        payload = facts_report(programs)
        if args.format == "json":
            print(_json.dumps(payload, indent=2, sort_keys=True), file=out)
        else:
            for row in payload["programs"]:
                fields = ", ".join(
                    f"{f['field']}[{'+'.join(f['kinds'])}]"
                    for f in row["fields"]
                ) or "-"
                print(f"{row['program']:15s} {row['key_locality']:10s} "
                      f"commutative={str(row['all_commutative']):5s} "
                      f"fields: {fields}", file=out)
        return 0
    table4 = None
    if args.bench:
        try:
            table4 = load_bench_costs(args.bench)
        except (OSError, ValueError, KeyError) as exc:
            print(f"advise error: {exc}", file=out)
            return 2
    try:
        advices = advise_programs(
            programs,
            workload=args.workload,
            num_flows=args.flows,
            max_packets=args.packets,
            seed=args.seed,
            cores=args.cores,
            table4=table4,
        )
    except ValueError as exc:
        print(f"advise error: {exc}", file=out)
        return 2
    if args.format == "json":
        config = {
            "workload": args.workload, "num_flows": args.flows,
            "max_packets": args.packets, "seed": args.seed,
            "cores": sorted(set(args.cores)),
            "costs": args.bench or "table4",
        }
        print(_json.dumps(advice_report(advices, config), indent=2,
                          sort_keys=True), file=out)
        return 0
    for advice in advices:
        k = advice.decision_cores
        print(f"{advice.program}: use {advice.recommended} "
              f"(decided at k={k})", file=out)
        for score in advice.scores:
            if not score.eligible:
                print(f"    {score.technique:12s} ineligible — {score.reason}",
                      file=out)
                continue
            marker = " <-- recommended" if (
                score.technique == advice.recommended) else ""
            print(f"    {score.technique:12s} {score.at(k):7.1f} Mpps @ k={k}"
                  f"{marker}", file=out)
    return 0


def cmd_validate(args, out) -> int:
    from .core import validate_program

    program = make_program(args.program)
    trace = synthesize_trace(
        TRACE_DISTRIBUTIONS[args.workload](),
        args.flows,
        seed=args.seed,
        bidirectional=program.bidirectional,
        max_packets=args.packets,
    )
    report = validate_program(program, list(trace))
    if report.ok:
        print(f"{args.program}: SCR-safe "
              f"({report.packets_checked} packets checked)", file=out)
        return 0
    print(f"{args.program}: NOT SCR-safe:", file=out)
    for problem in report.problems:
        print(f"  - {problem}", file=out)
    return 1


_COMMANDS = {
    "programs": cmd_programs,
    "synthesize": cmd_synthesize,
    "run": cmd_run,
    "mlffr": cmd_mlffr,
    "sweep": cmd_sweep,
    "hardware": cmd_hardware,
    "reproduce": cmd_reproduce,
    "inspect": cmd_inspect,
    "report": cmd_report,
    "bench": cmd_bench,
    "profile": cmd_profile,
    "chaos": cmd_chaos,
    "lint": cmd_lint,
    "advise": cmd_advise,
    "validate": cmd_validate,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "hotpath", None):
        # Exported (not passed point-to-point) so --jobs worker processes
        # inherit the selected simulator inner loop.
        os.environ[HOTPATH_ENV] = args.hotpath
    try:
        return _COMMANDS[args.command](args, out if out is not None else sys.stdout)
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. head):
        # exit quietly like a well-behaved Unix tool.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
