"""NetFPGA sequencer model: the Verilog ring module's cost and capacity.

§3.3.2 / §4.3 / Table 2: the fixed-function design keeps N rows of 112 bits
(a TCP 4-tuple plus one 16-bit value), an index pointer, and per-packet
logic that (i) parses the relevant fields, (ii) reads the whole memory out
in front of the packet — shifting the packet by N·112 + pointer bits —
and (iii) writes the current row and increments the pointer.  Synthesized
into the NetFPGA-PLUS reference switch (Alveo U250, 250 MHz, 1024-bit bus).

The LUT/flip-flop estimator is structural — a constant parse/control part,
a per-row register cost, and a read-mux part that grows with the mux tree
depth (log2 of rows) — with coefficients least-squares calibrated to the
paper's four synthesis points, which are also kept verbatim for reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "ALVEO_U250_LUTS",
    "ALVEO_U250_FFS",
    "PUBLISHED_SYNTHESIS",
    "NetFpgaSequencerModel",
]

#: Alveo U250 capacity, as in §4.3.
ALVEO_U250_LUTS = 1_728_000
ALVEO_U250_FFS = 3_456_000

#: Table 2, verbatim: rows → (total LUTs, logic LUTs, flip-flops).
PUBLISHED_SYNTHESIS: Dict[int, Tuple[int, int, int]] = {
    16: (1045, 646, 2369),
    32: (1852, 1444, 3158),
    64: (2637, 2229, 4707),
    128: (3390, 2982, 7786),
}


@dataclass(frozen=True)
class NetFpgaSpec:
    """Fixed parameters of the reference-switch integration."""

    row_bits: int = 112
    clock_mhz: int = 250
    bus_bits: int = 1024
    #: largest row count the paper reports meeting timing at 250 MHz.
    max_rows_at_timing: int = 128


class NetFpgaSequencerModel:
    """Resource/bandwidth estimates for an N-row sequencer instance."""

    # Estimator coefficients: LUTs ≈ a + b·log2(rows) (mux-tree dominated),
    # FFs ≈ c + d·rows (register-array dominated).  Least-squares fit to
    # PUBLISHED_SYNTHESIS; see class docstring.
    _LUT_BASE = -2161.0
    _LUT_PER_LOG2_ROW = 798.8
    _FF_BASE = 1556.0
    _FF_PER_ROW = 48.3

    def __init__(self, rows: int, spec: NetFpgaSpec = NetFpgaSpec()) -> None:
        if rows < 1:
            raise ValueError("need at least one history row")
        self.rows = rows
        self.spec = spec

    # -- capacity ------------------------------------------------------------------

    @property
    def history_bits(self) -> int:
        return self.rows * self.spec.row_bits

    @property
    def pointer_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.rows)))

    @property
    def prefix_bits(self) -> int:
        """Bits inserted in front of each packet: N·b + pointer (§3.3.2)."""
        return self.history_bits + self.pointer_bits

    def max_cores(self, meta_bytes: int) -> int:
        """Cores supported when each history item needs ``meta_bytes``.

        A 112-bit row holds one item of up to 14 bytes; larger metadata
        spans multiple rows.
        """
        if meta_bytes <= 0:
            return 10**9
        rows_per_item = max(1, math.ceil(meta_bytes * 8 / self.spec.row_bits))
        return self.rows // rows_per_item

    # -- resources --------------------------------------------------------------------

    def estimated_luts(self) -> int:
        return max(0, round(self._LUT_BASE + self._LUT_PER_LOG2_ROW * math.log2(max(2, self.rows))))

    def estimated_ffs(self) -> int:
        return round(self._FF_BASE + self._FF_PER_ROW * self.rows)

    def lut_utilization_pct(self) -> float:
        luts = PUBLISHED_SYNTHESIS.get(self.rows, (self.estimated_luts(),))[0]
        return 100.0 * luts / ALVEO_U250_LUTS

    def ff_utilization_pct(self) -> float:
        ffs = PUBLISHED_SYNTHESIS[self.rows][2] if self.rows in PUBLISHED_SYNTHESIS else self.estimated_ffs()
        return 100.0 * ffs / ALVEO_U250_FFS

    # -- timing / bandwidth ----------------------------------------------------------

    def meets_timing(self) -> bool:
        """The paper's synthesis meets 250 MHz through 128 rows (§4.3)."""
        return self.rows <= self.spec.max_rows_at_timing

    def bandwidth_gbps(self) -> float:
        """Datapath bandwidth: bus width × clock (> 200 Gbit/s at 250 MHz)."""
        return self.spec.bus_bits * self.spec.clock_mhz * 1e6 / 1e9

    def synthesis_row(self) -> Tuple[int, int, int]:
        """(total LUTs, logic LUTs, FFs): published if available, else estimated."""
        if self.rows in PUBLISHED_SYNTHESIS:
            return PUBLISHED_SYNTHESIS[self.rows]
        luts = self.estimated_luts()
        return (luts, max(0, luts - 400), self.estimated_ffs())
