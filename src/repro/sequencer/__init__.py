"""Sequencer hardware models: behavioural, Tofino pipeline, NetFPGA RTL."""

from .netfpga import (
    ALVEO_U250_FFS,
    ALVEO_U250_LUTS,
    PUBLISHED_SYNTHESIS,
    NetFpgaSequencerModel,
)
from .p4_emitter import emit_p4
from .sequencer import PacketHistorySequencer, SequencedPacket
from .tofino import TofinoPipelineSpec, TofinoSequencerModel
from .tofino_pipeline import TofinoPipeline
from .verilog_emitter import emit_verilog

__all__ = [
    "ALVEO_U250_FFS",
    "ALVEO_U250_LUTS",
    "PUBLISHED_SYNTHESIS",
    "NetFpgaSequencerModel",
    "emit_p4",
    "emit_verilog",
    "TofinoPipeline",
    "PacketHistorySequencer",
    "SequencedPacket",
    "TofinoPipelineSpec",
    "TofinoSequencerModel",
]
