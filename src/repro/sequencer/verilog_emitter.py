"""Emit a Verilog skeleton of the NetFPGA sequencer module (§3.3.2, Fig. 4c).

The design the paper synthesizes into NetFPGA-PLUS: an N-row × 112-bit
memory, a ⌈log2 N⌉-bit index pointer, a parser pulling the relevant fields
off the 1024-bit AXI-Stream bus, a shifter inserting the N·112 + pointer
bits in front of the packet, and write/increment logic.  This emitter
prints that module with the geometry of a concrete
:class:`~repro.sequencer.netfpga.NetFpgaSequencerModel`, so the structural
claims (prefix size, pointer width, row count) are inspectable and tested
against the model's arithmetic.
"""

from __future__ import annotations

from .netfpga import NetFpgaSequencerModel

__all__ = ["emit_verilog"]

_TEMPLATE = """\
// Auto-generated SCR packet-history sequencer (NSDI'25 §3.3.2, Fig. 4c).
// Geometry: {rows} rows x {row_bits} bits, {ptr_bits}-bit index pointer,
// {prefix_bits}-bit prefix inserted per packet.  Target: NetFPGA-PLUS
// reference switch, {bus_bits}-bit AXIS datapath @ {clock_mhz} MHz.

module scr_sequencer #(
    parameter ROWS        = {rows},
    parameter ROW_BITS    = {row_bits},
    parameter PTR_BITS    = {ptr_bits},
    parameter BUS_BITS    = {bus_bits},
    parameter PREFIX_BITS = {prefix_bits}
) (
    input  wire                  clk,
    input  wire                  rst_n,

    // AXI-Stream in: packets from the MAC
    input  wire [BUS_BITS-1:0]   s_axis_tdata,
    input  wire                  s_axis_tvalid,
    input  wire                  s_axis_tlast,
    output wire                  s_axis_tready,

    // AXI-Stream out: packets with the history prefix inserted
    output reg  [BUS_BITS-1:0]   m_axis_tdata,
    output reg                   m_axis_tvalid,
    output reg                   m_axis_tlast,
    input  wire                  m_axis_tready
);

    // ---- history memory: written one row per packet, read whole ----
    reg [ROW_BITS-1:0] history_mem [0:ROWS-1];
    reg [PTR_BITS-1:0] index_ptr;

    // ---- parser: extract the program-relevant fields (f(p)) ----
    // A row holds a TCP 4-tuple (96 bits) plus a 16-bit value (§4.3).
    wire [ROW_BITS-1:0] parsed_fields;
    scr_parser parser_i (
        .tdata (s_axis_tdata),
        .tvalid(s_axis_tvalid),
        .fields(parsed_fields)
    );

    // ---- prefix assembly: the whole memory, in row order, plus pointer ----
    wire [PREFIX_BITS-1:0] prefix;
    genvar r;
    generate
        for (r = 0; r < ROWS; r = r + 1) begin : dump
            assign prefix[PREFIX_BITS-1 - r*ROW_BITS -: ROW_BITS]
                 = history_mem[r];
        end
    endgenerate
    assign prefix[PTR_BITS-1:0] = index_ptr;

    // ---- insertion shifter: move the packet by a fixed, known amount ----
    // Fixed shift is what makes the prefix placement cheap (§3.3.1): the
    // write offset is always 0, so the barrel shifter is constant-distance.
    scr_insert_shifter #(
        .SHIFT_BITS(PREFIX_BITS),
        .BUS_BITS  (BUS_BITS)
    ) shifter_i (
        .clk    (clk),
        .tdata_i(s_axis_tdata),
        .prefix (prefix),
        .tdata_o(m_axis_tdata)
    );

    // ---- write + pointer increment (after the dump is captured) ----
    integer i;
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n) begin
            index_ptr <= {{PTR_BITS{{1'b0}}}};
            for (i = 0; i < ROWS; i = i + 1)
                history_mem[i] <= {{ROW_BITS{{1'b0}}}};
        end else if (s_axis_tvalid && s_axis_tlast && s_axis_tready) begin
            history_mem[index_ptr] <= parsed_fields;
            index_ptr <= (index_ptr == ROWS-1) ? {{PTR_BITS{{1'b0}}}}
                                               : index_ptr + 1'b1;
        end
    end

    assign s_axis_tready = m_axis_tready;

endmodule
"""


def emit_verilog(model: NetFpgaSequencerModel) -> str:
    """Return the Verilog skeleton for ``model``'s geometry."""
    spec = model.spec
    return _TEMPLATE.format(
        rows=model.rows,
        row_bits=spec.row_bits,
        ptr_bits=model.pointer_bits,
        prefix_bits=model.prefix_bits,
        bus_bits=spec.bus_bits,
        clock_mhz=spec.clock_mhz,
    )
