"""Behavioural packet-history sequencer (§3.2, §3.3).

This is the platform-independent model of the sequencer that the Tofino and
NetFPGA designs implement: it sees every packet arriving at the machine,
(i) sprays packets round-robin across cores, (ii) maintains the recent
packet history in a ring, (iii) prefixes each outgoing packet with the SCR
header and a dump of the ring, and (iv) stamps the hardware timestamp used
in place of core-local clocks (§3.4).

The sequencer is the *only* writer of the history; cores never write it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from ..core.history import HistoryRing
from ..core.packet_format import ScrPacketCodec
from ..packet import Packet
from ..programs.base import PacketProgram

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import weight
    from ..faults.inject import SequencerFaults

__all__ = ["PacketHistorySequencer", "SequencedPacket"]


@dataclass(frozen=True)
class SequencedPacket:
    """One sequencer emission: destination core, wire bytes, sequence."""

    core: int
    data: bytes
    seq: int
    #: history sequences whose rows an injected truncation zeroed in this
    #: emission (empty in every fault-free run).
    truncated_seqs: Tuple[int, ...] = ()


class PacketHistorySequencer:
    """Round-robin spraying + history piggybacking for one program."""

    def __init__(
        self,
        program: PacketProgram,
        num_cores: int,
        num_slots: Optional[int] = None,
        dummy_eth: bool = True,
        faults: Optional["SequencerFaults"] = None,
    ) -> None:
        """``num_slots`` defaults to ``num_cores``: with round-robin spraying
        a core misses exactly ``num_cores - 1`` packets between its own, and
        loss recovery's window needs one more (the packet's own entry), so
        N = k rows suffice (§3.1, App. B)."""
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.program = program
        self.num_cores = num_cores
        self.num_slots = num_slots if num_slots is not None else num_cores
        if self.num_slots < num_cores:
            raise ValueError(
                f"{self.num_slots} history slots cannot cover {num_cores} cores"
            )
        self.codec = ScrPacketCodec(
            meta_size=program.metadata_size,
            num_slots=self.num_slots,
            dummy_eth=dummy_eth,
        )
        self.ring = HistoryRing(self.num_slots, program.metadata_size)
        #: optional truncation injector (repro.faults); None = fault-free.
        self.faults = faults
        self._seq = 0
        self._rr = 0

    @property
    def next_seq(self) -> int:
        return self._seq + 1

    @property
    def overhead_bytes(self) -> int:
        """Bytes added to each packet (drives the Fig. 10a NIC pressure)."""
        return self.codec.overhead_bytes

    def process(self, pkt: Packet) -> SequencedPacket:
        """Sequence one arriving packet.

        The hardware parser extracts the program's metadata ``f(p)``; the
        ring is dumped into the packet *before* the current metadata is
        written (matching the hardware datapath, §3.3.2), so the history
        block holds the previous ``num_slots`` packets.
        """
        self._seq += 1
        meta = self.program.extract_metadata(pkt)
        rows, index_ptr = self.ring.dump_and_push(meta.pack())
        truncated: Tuple[int, ...] = ()
        if self.faults is not None:
            # Corrupts this emission's copy only; the ring stays intact.
            rows, truncated = self.faults.truncate(
                self._seq, rows, index_ptr, self.num_slots
            )
        data = self.codec.encode(
            seq=self._seq,
            timestamp_ns=pkt.timestamp_ns,
            ring_rows=rows,
            index_ptr=index_ptr,
            original=pkt.to_bytes(),
        )
        core = self._rr
        self._rr = (self._rr + 1) % self.num_cores
        return SequencedPacket(
            core=core, data=data, seq=self._seq, truncated_seqs=truncated
        )

    def reset(self) -> None:
        self.ring.reset()
        self._seq = 0
        self._rr = 0
