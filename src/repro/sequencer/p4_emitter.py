"""Emit a P4_16/TNA skeleton of the Tofino sequencer (§3.3.2).

The functional pipeline (:mod:`~repro.sequencer.tofino_pipeline`) executes
the design; this module *prints* it, as the P4 program one would compile
with bf-p4c: header definitions for the SCR prefix, one register plus
RegisterAction for the index pointer, one register + read/conditional-write
RegisterAction per 32-bit history word, match-action tables driving them in
stage order, and a deparser emitting the Figure 4a layout.

The emitted program is a faithful skeleton, not a drop-in artifact: TNA
boilerplate (pragmas, PortId types, intrinsic metadata plumbing) is
included in simplified form so the structure — what consumes Table 3's
resources — is explicit and testable.
"""

from __future__ import annotations

from typing import List

from ..programs.base import PacketProgram
from .tofino import TofinoPipelineSpec
from .tofino_pipeline import TofinoPipeline

__all__ = ["emit_p4"]

_HEADER_TEMPLATE = """\
// Auto-generated SCR sequencer for program '{program}' over {cores} cores.
// History: {slots} slots x {meta_bytes} B metadata = {words} 32-bit registers
// (+1 index pointer).  See NSDI'25 §3.3.2 / Fig. 4.

#include <core.p4>
#include <tna.p4>

typedef bit<48> mac_addr_t;
const bit<16> ETHERTYPE_SCR = 0x88B5;

header ethernet_h {{
    mac_addr_t dst_addr;
    mac_addr_t src_addr;
    bit<16>    ether_type;
}}

header scr_h {{
    bit<16> magic;        // 0x5C12
    bit<8>  flags;
    bit<8>  index_ptr;
    bit<8>  num_slots;    // {slots}
    bit<8>  meta_size;    // {meta_bytes}
    bit<64> seq;
    bit<64> timestamp_ns; // stamped here, used instead of core clocks (§3.4)
}}

header history_h {{
    bit<{history_bits}> rows;  // raw ring dump, {slots} x {meta_bits} bits
}}

struct headers_t {{
    ethernet_h dummy_eth;   // prefixed for NIC parseability (§3.3.1)
    scr_h      scr;
    history_h  history;
    ethernet_h eth;         // original packet follows, unmodified
}}

struct metadata_t {{
    bit<32> idx;
    bit<{meta_bits}> packet_fields;  // f(p): the program's metadata
}}
"""

_INDEX_TEMPLATE = """\
// ---- stage 0: the index pointer (one stateful ALU) ----
Register<bit<32>, bit<1>>(1) index_ptr_reg;
RegisterAction<bit<32>, bit<1>, bit<32>>(index_ptr_reg)
bump_index = {{
    void apply(inout bit<32> value, out bit<32> old) {{
        old = value;
        if (value >= {max_index}) {{
            value = 0;
        }} else {{
            value = value + 1;
        }}
    }}
}};
"""

_HISTORY_TEMPLATE = """\
// ---- stage {stage}: history word {word} (slot {slot}, byte offset {offset}) ----
Register<bit<32>, bit<1>>(1) hist_{word}_reg;
RegisterAction<bit<32>, bit<1>, bit<32>>(hist_{word}_reg)
read_write_{word} = {{
    void apply(inout bit<32> value, out bit<32> old) {{
        old = value;
        if (meta.idx == {slot}) {{
            value = meta.packet_fields[{hi}:{lo}];  // masked in hardware
        }}
    }}
}};
"""

_CONTROL_TEMPLATE = """\
control ScrSequencer(inout headers_t hdr, inout metadata_t meta) {{
    apply {{
        meta.idx = bump_index.execute(0);
        hdr.scr.setValid();
        hdr.scr.magic      = 0x5C12;
        hdr.scr.index_ptr  = (bit<8>) meta.idx;
        hdr.scr.num_slots  = {slots};
        hdr.scr.meta_size  = {meta_bytes};
        hdr.scr.seq        = hdr.scr.seq + 1;          // from a 64-bit register pair
        hdr.scr.timestamp_ns = 0;                      // ig_intr_md ingress timestamp
{reads}
        hdr.dummy_eth.setValid();
        hdr.dummy_eth.ether_type = ETHERTYPE_SCR;
        hdr.history.setValid();
    }}
}}
"""


def emit_p4(
    program: PacketProgram,
    num_cores: int,
    spec: TofinoPipelineSpec = TofinoPipelineSpec(),
) -> str:
    """Return the P4_16/TNA skeleton for ``program`` over ``num_cores``."""
    # Reuse the pipeline's placement logic (and its capacity check).
    pipeline = TofinoPipeline(program, num_cores, spec=spec)
    meta_bytes = program.metadata_size
    meta_bits = max(8, meta_bytes * 8)
    slots = pipeline.num_slots
    words = len(pipeline.history_actions)

    parts: List[str] = [
        _HEADER_TEMPLATE.format(
            program=program.name,
            cores=num_cores,
            slots=slots,
            meta_bytes=meta_bytes,
            meta_bits=meta_bits,
            words=words,
            history_bits=max(8, slots * meta_bytes * 8),
        ),
        _INDEX_TEMPLATE.format(max_index=max(0, slots - 1)),
    ]
    reads = []
    for word in range(words):
        byte_offset = word * 4
        slot = byte_offset // meta_bytes if meta_bytes else 0
        # Bit-slice of f(p) this word carries when selected for overwrite
        # (straddling words are masked in the RegisterAction body).
        local = byte_offset - slot * meta_bytes
        hi = max(0, meta_bits - 1 - local * 8)
        lo = max(0, hi - 31)
        stage = 1 + word // spec.stateful_alus_per_stage
        parts.append(
            _HISTORY_TEMPLATE.format(
                stage=stage, word=word, slot=slot, offset=byte_offset,
                hi=hi, lo=lo,
            )
        )
        reads.append(
            f"        hdr.history.rows[{max(0, slots * meta_bytes * 8 - 1 - word * 32)}"
            f":{max(0, slots * meta_bytes * 8 - 32 - word * 32)}] = "
            f"read_write_{word}.execute(0);"
        )
    parts.append(_CONTROL_TEMPLATE.format(
        slots=slots, meta_bytes=meta_bytes, reads="\n".join(reads),
    ))
    return "\n".join(parts)
