"""A functional model of the Tofino sequencer datapath (§3.3.2, Fig. 4b).

Where :class:`~repro.sequencer.tofino.TofinoSequencerModel` accounts for
*resources*, this module executes the design: a parser, a sequence of
match-action stages whose stateful registers hold the history, and a
deparser that serializes the metadata into the SCR packet format.

The history lives in a byte-packed register file: items are laid out
back-to-back across the 32-bit registers (not word-aligned), which is what
lets 44 registers hold ⌊176 B / 18 B⌋ = 9 token-bucket items — the §4.3
capacity arithmetic.  Per packet:

* stage 1's register increments the **index pointer** (mod the slot
  count) and exports the old value as packet metadata — one
  RegisterAction;
* every **history register** reads its value out into packet metadata;
  registers overlapping the byte range of the slot at the old pointer
  additionally apply a *masked* read-modify-write with the current
  packet's field bytes — still a single stateful-ALU operation each;
* the deparser emits the dummy Ethernet header, the SCR header, the
  packed register bytes re-sliced into ring rows with the index pointer,
  and the original packet (§3.3.1).

Equivalence with the platform-independent sequencer is asserted by tests:
both produce byte-identical SCR packets for any input sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..core.packet_format import ScrPacketCodec
from ..packet import Packet
from ..programs.base import PacketProgram
from .tofino import TofinoPipelineSpec

__all__ = ["Register", "RegisterAction", "MauStage", "TofinoPipeline"]

_WORD_BYTES = 4
_WORD_MASK = 0xFFFFFFFF


@dataclass
class Register:
    """One stateful register (32 bits) with its ALU."""

    stage: int
    index: int
    value: int = 0


class RegisterAction:
    """A single-register stateful operation, as the ALU executes it."""

    def __init__(self, register: Register):
        self.register = register

    def increment_mod(self, modulus: int) -> Tuple[int, int]:
        """Index-pointer action: returns (old, new); new = (old+1) % modulus."""
        old = self.register.value
        self.register.value = (old + 1) % modulus
        return old, self.register.value

    def read_and_masked_write(self, mask: int, new_bits: int) -> int:
        """History action: read out; overwrite the masked bits.

        ``mask == 0`` is a pure read.  A partial mask is the boundary case
        of a byte-packed item straddling this register — still one ALU op.
        """
        old = self.register.value
        if mask:
            self.register.value = (old & ~mask | new_bits & mask) & _WORD_MASK
        return old


class MauStage:
    """One match-action stage holding up to R stateful registers."""

    def __init__(self, stage_index: int, num_registers: int):
        self.stage_index = stage_index
        self.registers = [Register(stage_index, i) for i in range(num_registers)]

    def actions(self) -> List[RegisterAction]:
        return [RegisterAction(r) for r in self.registers]


class TofinoPipeline:
    """The sequencer compiled onto a register pipeline for one program."""

    def __init__(
        self,
        program: PacketProgram,
        num_cores: int,
        spec: TofinoPipelineSpec = TofinoPipelineSpec(),
        dummy_eth: bool = True,
    ) -> None:
        self.program = program
        self.num_cores = num_cores
        self.spec = spec
        self.meta_bytes = program.metadata_size
        self.num_slots = num_cores
        total_bytes = self.num_slots * self.meta_bytes
        words_needed = max(1, math.ceil(total_bytes / _WORD_BYTES))
        words_available = (spec.stages - 1) * spec.stateful_alus_per_stage
        if words_needed > words_available:
            raise ValueError(
                f"{program.name} x{num_cores} cores needs {words_needed} "
                f"32-bit fields; the pipeline has {words_available} (§4.3)"
            )
        # stage 0 hosts the index pointer; history registers fill the rest.
        self.stages = [
            MauStage(s, spec.stateful_alus_per_stage) for s in range(spec.stages)
        ]
        self.index_action = RegisterAction(self.stages[0].registers[0])
        history_actions: List[RegisterAction] = []
        for stage in self.stages[1:]:
            history_actions.extend(stage.actions())
        self.history_actions = history_actions[:words_needed]
        self._history_bytes = total_bytes
        self.codec = ScrPacketCodec(
            meta_size=self.meta_bytes, num_slots=self.num_slots, dummy_eth=dummy_eth
        )
        self._seq = 0
        self._rr = 0

    # -- the per-packet datapath ---------------------------------------------------

    def process(self, pkt: Packet) -> Tuple[int, bytes, int]:
        """Run one packet through parser → stages → deparser.

        Returns (destination core, SCR packet bytes, sequence number) —
        the same contract as the behavioural sequencer.
        """
        self._seq += 1
        # Parser: extract the program's fields (the hardware parser mirrors
        # the program's metadata definition).
        new_meta = self.program.extract_metadata(pkt).pack()

        # Stage 0: bump the index pointer (in units of history slots).
        old_slot, _ = self.index_action.increment_mod(max(1, self.num_slots))

        # The byte range this packet's metadata overwrites, and the per-
        # register masks it induces (big-endian within each 32-bit word).
        write_start = old_slot * self.meta_bytes
        write_end = write_start + self.meta_bytes

        read_words: List[int] = []
        for word_index, action in enumerate(self.history_actions):
            word_start = word_index * _WORD_BYTES
            mask = 0
            bits = 0
            for b in range(_WORD_BYTES):
                offset = word_start + b
                if write_start <= offset < write_end:
                    shift = (_WORD_BYTES - 1 - b) * 8
                    mask |= 0xFF << shift
                    bits |= new_meta[offset - write_start] << shift
            read_words.append(action.read_and_masked_write(mask, bits))

        # Deparser: registers → packed bytes → ring rows (physical order).
        packed = b"".join(w.to_bytes(_WORD_BYTES, "big") for w in read_words)
        packed = packed[: self._history_bytes]
        rows = [
            packed[s * self.meta_bytes : (s + 1) * self.meta_bytes]
            for s in range(self.num_slots)
        ]
        data = self.codec.encode(
            seq=self._seq,
            timestamp_ns=pkt.timestamp_ns,
            ring_rows=rows,
            index_ptr=old_slot,
            original=pkt.to_bytes(),
        )
        core = self._rr
        self._rr = (self._rr + 1) % self.num_cores
        return core, data, self._seq

    # -- introspection ---------------------------------------------------------------

    def stateful_alus_used(self) -> int:
        return 1 + len(self.history_actions)

    def reset(self) -> None:
        for stage in self.stages:
            for register in stage.registers:
                register.value = 0
        self._seq = 0
        self._rr = 0
