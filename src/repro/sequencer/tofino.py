"""Tofino sequencer model: register-pipeline capacity + resource accounting.

§3.3.2 and Table 3: the Tofino design stores the packet history in stateful
registers spread across match-action stages.  Stage 1 holds the index
pointer (one stateful ALU); each subsequent stage contributes its stateful
ALUs as 32-bit history fields.  Register ALUs read their value into packet
metadata on every packet, and the ALU at the index pointer additionally
overwrites its register with the current packet's field — all data-plane
operations.

The public Tofino-1 architecture has 12 MAU stages with 4 stateful ALUs
each; one ALU goes to the index pointer and the 11 remaining stages' 44
ALUs hold history — exactly the "44 32-bit fields" and the 93.75 % stateful
ALU utilization (45/48) the paper reports.  Per-feature costs for the other
resources are calibrated to reproduce Table 3 and documented inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..programs.base import PacketProgram

__all__ = ["TofinoPipelineSpec", "TofinoSequencerModel"]


@dataclass(frozen=True)
class TofinoPipelineSpec:
    """Per-pipeline totals for the resources Table 3 reports (Tofino-1)."""

    stages: int = 12
    stateful_alus_per_stage: int = 4
    register_bits: int = 32
    logical_tables_per_stage: int = 16
    gateways_per_stage: int = 16
    map_rams_per_stage: int = 24
    srams_per_stage: int = 80
    tcams_per_stage: int = 24
    vliw_slots_per_stage: int = 32
    exact_crossbar_bytes_per_stage: int = 128


class TofinoSequencerModel:
    """Capacity and resource usage of the register-based sequencer."""

    def __init__(self, spec: TofinoPipelineSpec = TofinoPipelineSpec()) -> None:
        self.spec = spec

    # -- capacity -----------------------------------------------------------------

    @property
    def index_pointer_alus(self) -> int:
        return 1

    @property
    def history_fields(self) -> int:
        """32-bit history fields: all stateful ALUs after the index stage."""
        return (self.spec.stages - 1) * self.spec.stateful_alus_per_stage

    @property
    def history_bits(self) -> int:
        return self.history_fields * self.spec.register_bits

    def max_cores(self, program: PacketProgram) -> int:
        """How many cores the Tofino sequencer can feed for ``program``.

        Round-robin over k cores needs history for k packets; each history
        item is the program's metadata, packed bit-level into the 32-bit
        fields (Table 3's per-program core counts).
        """
        meta_bytes = program.metadata_size
        if meta_bytes == 0:
            return 10**9  # stateless programs need no history at all
        return (self.history_bits // 8) // meta_bytes

    # -- resource accounting (Table 3) ------------------------------------------------

    def resource_usage(self) -> Dict[str, float]:
        """Average per-stage utilization (%) of each Table 3 resource.

        Per-register costs (each of the 45 registers: 44 history + index):
        one logical table + one gateway to drive its RegisterAction, one map
        RAM word for the register, ~2 SRAM blocks for the table + register
        storage, ~1.2 VLIW slots for the read-out/overwrite actions, and a
        crossbar byte share for the index-pointer match.  TCAM is unused —
        every match is exact (§3.3.2).
        """
        s = self.spec
        registers = self.history_fields + self.index_pointer_alus
        total = {
            "stateful_alus": s.stages * s.stateful_alus_per_stage,
            "logical_tables": s.stages * s.logical_tables_per_stage,
            "gateways": s.stages * s.gateways_per_stage,
            "map_rams": s.stages * s.map_rams_per_stage,
            "srams": s.stages * s.srams_per_stage,
            "tcams": s.stages * s.tcams_per_stage,
            "vliw": s.stages * s.vliw_slots_per_stage,
            "exact_crossbar_bytes": s.stages * s.exact_crossbar_bytes_per_stage,
        }
        used = {
            "stateful_alus": registers,
            "logical_tables": registers + 1,  # +1 for the parser/steering table
            "gateways": registers,
            "map_rams": registers,
            "srams": registers * 2 + 3,
            "tcams": 0,
            "vliw": round(registers * 0.78),
            "exact_crossbar_bytes": round(registers * 7.95),
        }
        return {
            name: 100.0 * used[name] / total[name] for name in total
        }

    def fits(self, program: PacketProgram, num_cores: int) -> bool:
        return num_cores <= self.max_cores(program)
