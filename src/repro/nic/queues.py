"""RX descriptor queues: bounded rings between the NIC and each core.

The testbed uses 256 PCIe descriptors per receive queue (§4.1).  When a
core falls behind, its ring fills and the NIC drops arriving packets — the
loss that the MLFFR methodology searches against.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

T = TypeVar("T")

__all__ = ["RxQueue", "DEFAULT_DESCRIPTORS"]

#: The evaluation configures 256 PCIe descriptors (§4.1).
DEFAULT_DESCRIPTORS = 256


class RxQueue(Generic[T]):
    """A bounded FIFO ring; enqueue on a full ring drops the packet."""

    def __init__(self, capacity: int = DEFAULT_DESCRIPTORS) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[T] = deque()
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def is_full(self) -> bool:
        return len(self._ring) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._ring

    def enqueue(self, item: T) -> bool:
        """Add ``item``; returns False (and counts a drop) on a full ring."""
        if self.is_full:
            self.dropped += 1
            return False
        self._ring.append(item)
        self.enqueued += 1
        return True

    def dequeue(self) -> Optional[T]:
        if not self._ring:
            return None
        return self._ring.popleft()

    def peek(self) -> Optional[T]:
        if not self._ring:
            return None
        return self._ring[0]

    def clear(self) -> None:
        self._ring.clear()
