"""NIC model: steering, descriptor rings, and line-rate byte accounting.

The testbed NIC is a 100 Gbit/s ConnectX-5 (§4.1).  The model captures the
three NIC behaviours the evaluation depends on:

* **Steering** — which RX queue (core) each arriving packet goes to:
  Toeplitz RSS over configurable fields, symmetric RSS [70], round-robin
  spraying [7] (what SCR and the shared-state baseline use), or explicit
  flow-director rules.
* **Bounded RX rings** — 256 descriptors per queue; drops when a core lags.
* **Line rate** — packets also consume NIC/PCIe bytes.  SCR's piggybacked
  history enlarges packets, so at high core counts the wire, not the CPU,
  becomes the bottleneck (Figure 10a).  ``max_pps_for_wire_size`` gives the
  ceiling including the 20-byte preamble+IFG and 4-byte FCS per frame.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional

from ..packet import Packet
from ..packet.flow import FiveTuple
from ..telemetry.events import (
    EV_FAULT_DROP,
    EV_RING_DROP,
    EV_WIRE_DROP,
    NULL_TRACER,
    EventTracer,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..faults.inject import SimFaults
from .queues import DEFAULT_DESCRIPTORS, RxQueue
from .rss import (
    SYMMETRIC_RSS_KEY,
    RssIndirection,
    hash_input_l2,
    hash_input_l3,
    hash_input_l4,
    toeplitz_hash,
)

__all__ = ["SteeringMode", "Nic", "ETHERNET_OVERHEAD_BYTES", "MIN_FRAME_BYTES"]

#: Preamble (7) + SFD (1) + inter-frame gap (12) + FCS (4) per frame.
ETHERNET_OVERHEAD_BYTES = 24
#: Minimum Ethernet frame size excluding FCS.
MIN_FRAME_BYTES = 60


class SteeringMode(enum.Enum):
    """How the NIC picks an RX queue for an arriving packet."""

    RSS_L3 = "rss-l3"  # hash src & dst IP
    RSS_L4 = "rss-l4"  # hash the 4-tuple
    RSS_SYMMETRIC = "rss-symmetric"  # 4-tuple with the symmetric key [70]
    RSS_L2 = "rss-l2"  # hash the (dummy) Ethernet header (§3.3.1)
    ROUND_ROBIN = "round-robin"  # spray evenly [7]
    FLOW_DIRECTOR = "flow-director"  # explicit rules, RSS_L4 fallback


class Nic:
    """A multi-queue NIC with configurable steering and line-rate limits."""

    def __init__(
        self,
        num_queues: int,
        mode: SteeringMode = SteeringMode.RSS_L4,
        line_rate_gbps: float = 100.0,
        descriptors: int = DEFAULT_DESCRIPTORS,
        indirection_size: int = 128,
        tracer: EventTracer = NULL_TRACER,
        faults: Optional["SimFaults"] = None,
    ) -> None:
        if num_queues < 1:
            raise ValueError("need at least one queue")
        if line_rate_gbps <= 0:
            raise ValueError("line rate must be positive")
        self.num_queues = num_queues
        self.mode = mode
        self.line_rate_bps = line_rate_gbps * 1e9
        self.queues: List[RxQueue[Packet]] = [
            RxQueue(descriptors) for _ in range(num_queues)
        ]
        self.indirection = RssIndirection(num_queues, table_size=indirection_size)
        self._rr_next = 0
        self._director_rules: Dict[FiveTuple, int] = {}
        #: time (ns) at which the wire is next free; enforces line rate.
        self._wire_free_ns = 0.0
        self.wire_dropped = 0
        self.delivered = 0
        #: telemetry event sink; the default disabled tracer is free.
        self.tracer = tracer
        #: optional fault injector (repro.faults); None = fault-free.
        self.faults = faults
        self.fault_dropped = 0
        #: arrival ordinal, the key the fault plan's decisions hash on.
        self._arrival_index = 0

    # -- steering ------------------------------------------------------------

    def steer(self, pkt: Packet) -> int:
        """Return the RX queue index for ``pkt`` under the configured mode."""
        if self.mode is SteeringMode.ROUND_ROBIN:
            q = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.num_queues
            return q
        if self.mode is SteeringMode.RSS_L2:
            return self.indirection.queue_of(toeplitz_hash(hash_input_l2(pkt)))
        ft = pkt.five_tuple()
        if self.mode is SteeringMode.FLOW_DIRECTOR:
            rule = self._director_rules.get(ft)
            if rule is not None:
                return rule
            return self.indirection.queue_of(toeplitz_hash(hash_input_l4(ft)))
        if self.mode is SteeringMode.RSS_L3:
            return self.indirection.queue_of(toeplitz_hash(hash_input_l3(ft)))
        if self.mode is SteeringMode.RSS_SYMMETRIC:
            h = toeplitz_hash(hash_input_l4(ft), key=SYMMETRIC_RSS_KEY)
            return self.indirection.queue_of(h)
        # RSS_L4 default.
        return self.indirection.queue_of(toeplitz_hash(hash_input_l4(ft)))

    def add_director_rule(self, ft: FiveTuple, queue: int) -> None:
        if not 0 <= queue < self.num_queues:
            raise IndexError(f"queue {queue} out of range")
        self._director_rules[ft] = queue

    # -- line rate -----------------------------------------------------------

    def wire_time_ns(self, wire_len: int) -> float:
        """Nanoseconds a frame of ``wire_len`` bytes occupies the wire."""
        frame = max(MIN_FRAME_BYTES, wire_len) + ETHERNET_OVERHEAD_BYTES
        return frame * 8 / self.line_rate_bps * 1e9

    def max_pps_for_wire_size(self, wire_len: int) -> float:
        """The line-rate pps ceiling for frames of ``wire_len`` bytes."""
        return 1e9 / self.wire_time_ns(wire_len)

    # -- receive path ----------------------------------------------------------

    @property
    def wire_busy_until_ns(self) -> float:
        """When the wire finishes clocking in every admitted frame so far.

        Every *admitted* frame advances this — including frames later
        dropped at a full RX ring or by an injected fault.  The wire
        serialized their full (SCR-enlarged) byte count either way, which
        is exactly why history bytes cap scaling in Figure 10a: a ring
        drop refunds no wire time.
        """
        return self._wire_free_ns

    def receive(self, pkt: Packet) -> Optional[int]:
        """Accept ``pkt`` from the wire, steer it, enqueue on its RX ring.

        Returns the queue index on success, or None when the packet was
        dropped (wire saturated, injected fault, or ring full).  The wire
        model serializes frames: a packet arriving while the previous
        frame is still being clocked in is delayed, and dropped once
        delay exceeds arrival time (the NIC has no infinite buffer before
        the MAC).

        Byte accounting is deliberately asymmetric: a MAC-FIFO (wire)
        drop charges nothing — the frame never finished arriving — while
        fault and ring drops happen *after* admission, so their full
        wire bytes (piggybacked history included) stay charged.
        """
        arrival = pkt.timestamp_ns
        index = self._arrival_index
        self._arrival_index += 1
        if arrival < self._wire_free_ns - self.wire_time_ns(pkt.wire_len) * 64:
            # More than ~64 frames of backlog on the wire: the offered rate
            # exceeds line rate and the MAC FIFO overflows.
            self.wire_dropped += 1
            if self.tracer.enabled:
                self.tracer.emit(EV_WIRE_DROP, ts_ns=float(arrival),
                                 backlog_ns=self._wire_free_ns - arrival)
            return None
        self._wire_free_ns = max(self._wire_free_ns, float(arrival)) + self.wire_time_ns(
            pkt.wire_len
        )
        queue_index = self.steer(pkt)
        if self.faults is not None and self.faults.drop(index):
            # Lost between MAC and ring; the wire time above stays charged.
            self.fault_dropped += 1
            if self.tracer.enabled:
                self.tracer.emit(EV_FAULT_DROP, ts_ns=float(arrival),
                                 core=queue_index, index=index)
            return None
        if self.queues[queue_index].enqueue(pkt):
            self.delivered += 1
            return queue_index
        if self.tracer.enabled:
            self.tracer.emit(EV_RING_DROP, ts_ns=float(arrival),
                             core=queue_index,
                             depth=len(self.queues[queue_index]))
        return None

    def reset_counters(self) -> None:
        self.wire_dropped = 0
        self.delivered = 0
        self.fault_dropped = 0
        self._arrival_index = 0
        self._wire_free_ns = 0.0
        for q in self.queues:
            q.enqueued = 0
            q.dropped = 0
            q.clear()

    @property
    def ring_dropped(self) -> int:
        return sum(q.dropped for q in self.queues)
