"""Receive Side Scaling: the Toeplitz hash and indirection table [4].

This is the real Toeplitz algorithm used by hardware NICs, including the
Microsoft-standard 40-byte default key and the symmetric key of Woo & Park
[70] (``0x6d5a`` repeated), which hashes both directions of a connection to
the same value — what the connection-tracker sharding baseline needs (§4.1).

The hash input follows the standard layouts: src IP, dst IP (4 bytes each,
network order), then src port, dst port (2 bytes each) for L4 hashing.  An
L2 input layout over the Ethernet header is also provided because the SCR
testbed steers sequencer-prefixed packets by hashing the dummy Ethernet
header (§3.3.1).
"""

from __future__ import annotations

from typing import List

from ..packet import Packet
from ..packet.flow import FiveTuple

__all__ = [
    "MSFT_RSS_KEY",
    "SYMMETRIC_RSS_KEY",
    "toeplitz_hash",
    "hash_input_l3",
    "hash_input_l4",
    "hash_input_l2",
    "RssIndirection",
]

#: The Microsoft-standard verification key from the RSS specification.
MSFT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)

#: Symmetric RSS key [70]: hash(src,dst) == hash(dst,src).
SYMMETRIC_RSS_KEY = bytes([0x6D, 0x5A]) * 20


def toeplitz_hash(data: bytes, key: bytes = MSFT_RSS_KEY) -> int:
    """The Toeplitz hash: 32-bit result over ``data`` with ``key``.

    For each set bit in the input (MSB first), XOR in the 32-bit window of
    the key aligned at that bit position — the textbook hardware definition.
    """
    if len(key) * 8 < len(data) * 8 + 32:
        raise ValueError("key too short for input length")
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    for i, byte in enumerate(data):
        for bit in range(8):
            if byte & (0x80 >> bit):
                shift = key_bits - 32 - (i * 8 + bit)
                result ^= (key_int >> shift) & 0xFFFFFFFF
    return result


def hash_input_l3(ft: FiveTuple) -> bytes:
    """RSS input for IP-pair hashing (src & dst IP only)."""
    return ft.src_ip.to_bytes(4, "big") + ft.dst_ip.to_bytes(4, "big")


def hash_input_l4(ft: FiveTuple) -> bytes:
    """RSS input for 4-tuple hashing (IPs then ports)."""
    return (
        ft.src_ip.to_bytes(4, "big")
        + ft.dst_ip.to_bytes(4, "big")
        + ft.src_port.to_bytes(2, "big")
        + ft.dst_port.to_bytes(2, "big")
    )


def hash_input_l2(pkt: Packet) -> bytes:
    """RSS input over the Ethernet header (dst MAC, src MAC, ethertype).

    Used when the ToR-switch sequencer prepends a dummy Ethernet header and
    the NIC is configured to hash on L2 fields to spray packets (§3.3.1).
    """
    return pkt.eth.dst + pkt.eth.src + pkt.eth.ethertype.to_bytes(2, "big")


class RssIndirection:
    """The RSS indirection table: hash LSBs → queue number.

    Real NICs expose a small table (commonly 128 entries) that the driver
    (or RSS++ [34]) rewrites to migrate flow *shards* between queues.  Shard
    migration granularity — the heart of RSS++'s limits — is exactly one
    table entry.
    """

    def __init__(self, num_queues: int, table_size: int = 128) -> None:
        if num_queues < 1:
            raise ValueError("need at least one queue")
        if table_size < num_queues:
            raise ValueError("table must have at least one entry per queue")
        self.table_size = table_size
        self.num_queues = num_queues
        self.table: List[int] = [i % num_queues for i in range(table_size)]

    def shard_of(self, hash_value: int) -> int:
        """The shard (table index) a hash value falls into."""
        return hash_value & (self.table_size - 1) if self._pow2() else hash_value % self.table_size

    def _pow2(self) -> bool:
        return (self.table_size & (self.table_size - 1)) == 0

    def queue_of(self, hash_value: int) -> int:
        return self.table[self.shard_of(hash_value)]

    def migrate(self, shard: int, queue: int) -> None:
        """Move one shard to another queue (an RSS++ rebalancing action)."""
        if not 0 <= shard < self.table_size:
            raise IndexError(f"shard {shard} out of range")
        if not 0 <= queue < self.num_queues:
            raise IndexError(f"queue {queue} out of range")
        self.table[shard] = queue

    def shards_on(self, queue: int) -> List[int]:
        return [s for s, q in enumerate(self.table) if q == queue]
