"""Receive Side Scaling: the Toeplitz hash and indirection table [4].

This is the real Toeplitz algorithm used by hardware NICs, including the
Microsoft-standard 40-byte default key and the symmetric key of Woo & Park
[70] (``0x6d5a`` repeated), which hashes both directions of a connection to
the same value — what the connection-tracker sharding baseline needs (§4.1).

The hash input follows the standard layouts: src IP, dst IP (4 bytes each,
network order), then src port, dst port (2 bytes each) for L4 hashing.  An
L2 input layout over the Ethernet header is also provided because the SCR
testbed steers sequencer-prefixed packets by hashing the dummy Ethernet
header (§3.3.1).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..packet import Packet
from ..packet.flow import FiveTuple

__all__ = [
    "MSFT_RSS_KEY",
    "SYMMETRIC_RSS_KEY",
    "toeplitz_hash",
    "toeplitz_hash_batch",
    "hash_input_l3",
    "hash_input_l4",
    "hash_input_l2",
    "RssIndirection",
]

#: The Microsoft-standard verification key from the RSS specification.
MSFT_RSS_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)

#: Symmetric RSS key [70]: hash(src,dst) == hash(dst,src).
SYMMETRIC_RSS_KEY = bytes([0x6D, 0x5A]) * 20


def toeplitz_hash(data: bytes, key: bytes = MSFT_RSS_KEY) -> int:
    """The Toeplitz hash: 32-bit result over ``data`` with ``key``.

    For each set bit in the input (MSB first), XOR in the 32-bit window of
    the key aligned at that bit position — the textbook hardware definition.
    """
    if len(key) * 8 < len(data) * 8 + 32:
        raise ValueError("key too short for input length")
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    for i, byte in enumerate(data):
        for bit in range(8):
            if byte & (0x80 >> bit):
                shift = key_bits - 32 - (i * 8 + bit)
                result ^= (key_int >> shift) & 0xFFFFFFFF
    return result


#: Per-(key, input-length) lookup tables for the batch Toeplitz path:
#: ``table[i][b]`` is the XOR of the 32-bit key windows selected by the set
#: bits of byte value ``b`` at byte position ``i``.  The hash of a row is
#: then the XOR-fold of one table lookup per byte — the classic
#: table-driven formulation of the same hardware definition, bit-identical
#: to :func:`toeplitz_hash` (the scalar oracle; see docs/HOTPATH.md).
_TOEPLITZ_TABLES: Dict[Tuple[bytes, int], np.ndarray] = {}


def _toeplitz_tables(key: bytes, length: int) -> np.ndarray:
    """The ``(length, 256)`` uint32 lookup tables for ``key``, cached."""
    cached = _TOEPLITZ_TABLES.get((key, length))
    if cached is not None:
        return cached
    if len(key) * 8 < length * 8 + 32:
        raise ValueError("key too short for input length")
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    # windows[i*8 + bit] = the 32-bit key window XORed in when that input
    # bit is set (same shift arithmetic as the scalar loop).
    windows = np.empty(length * 8, dtype=np.uint32)
    for pos in range(length * 8):
        shift = key_bits - 32 - pos
        windows[pos] = (key_int >> shift) & 0xFFFFFFFF
    # bit_sel[b, bit] — is bit ``bit`` (MSB first) set in byte value b?
    byte_vals = np.arange(256, dtype=np.uint16)
    bit_sel = (byte_vals[:, None] & (0x80 >> np.arange(8))) != 0
    tables = np.empty((length, 256), dtype=np.uint32)
    for i in range(length):
        selected = np.where(bit_sel, windows[i * 8:(i + 1) * 8][None, :], 0)
        tables[i] = np.bitwise_xor.reduce(selected.astype(np.uint32), axis=1)
    tables.setflags(write=False)
    _TOEPLITZ_TABLES[(key, length)] = tables
    return tables


def toeplitz_hash_batch(data: np.ndarray, key: bytes = MSFT_RSS_KEY) -> np.ndarray:
    """Toeplitz hashes for a whole matrix of inputs at once.

    ``data`` is an ``(n, length)`` uint8 matrix — one hash input per row,
    all the same length.  Returns ``n`` uint32 hashes, each bit-identical
    to ``toeplitz_hash(bytes(row), key)``; precomputed per-byte lookup
    tables replace the per-bit scalar loop (see docs/HOTPATH.md).
    """
    mat = np.ascontiguousarray(data, dtype=np.uint8)
    if mat.ndim != 2:
        raise ValueError("data must be an (n, length) matrix")
    n, length = mat.shape
    tables = _toeplitz_tables(key, length)
    out = np.zeros(n, dtype=np.uint32)
    for i in range(length):
        out ^= tables[i][mat[:, i]]
    return out


def hash_input_l3(ft: FiveTuple) -> bytes:
    """RSS input for IP-pair hashing (src & dst IP only)."""
    return ft.src_ip.to_bytes(4, "big") + ft.dst_ip.to_bytes(4, "big")


def hash_input_l4(ft: FiveTuple) -> bytes:
    """RSS input for 4-tuple hashing (IPs then ports)."""
    return (
        ft.src_ip.to_bytes(4, "big")
        + ft.dst_ip.to_bytes(4, "big")
        + ft.src_port.to_bytes(2, "big")
        + ft.dst_port.to_bytes(2, "big")
    )


def hash_input_l2(pkt: Packet) -> bytes:
    """RSS input over the Ethernet header (dst MAC, src MAC, ethertype).

    Used when the ToR-switch sequencer prepends a dummy Ethernet header and
    the NIC is configured to hash on L2 fields to spray packets (§3.3.1).
    """
    return pkt.eth.dst + pkt.eth.src + pkt.eth.ethertype.to_bytes(2, "big")


class RssIndirection:
    """The RSS indirection table: hash LSBs → queue number.

    Real NICs expose a small table (commonly 128 entries) that the driver
    (or RSS++ [34]) rewrites to migrate flow *shards* between queues.  Shard
    migration granularity — the heart of RSS++'s limits — is exactly one
    table entry.
    """

    def __init__(self, num_queues: int, table_size: int = 128) -> None:
        if num_queues < 1:
            raise ValueError("need at least one queue")
        if table_size < num_queues:
            raise ValueError("table must have at least one entry per queue")
        self.table_size = table_size
        self.num_queues = num_queues
        self.table: List[int] = [i % num_queues for i in range(table_size)]

    def shard_of(self, hash_value: int) -> int:
        """The shard (table index) a hash value falls into."""
        return hash_value & (self.table_size - 1) if self._pow2() else hash_value % self.table_size

    def _pow2(self) -> bool:
        return (self.table_size & (self.table_size - 1)) == 0

    def queue_of(self, hash_value: int) -> int:
        return self.table[self.shard_of(hash_value)]

    def migrate(self, shard: int, queue: int) -> None:
        """Move one shard to another queue (an RSS++ rebalancing action)."""
        if not 0 <= shard < self.table_size:
            raise IndexError(f"shard {shard} out of range")
        if not 0 <= queue < self.num_queues:
            raise IndexError(f"queue {queue} out of range")
        self.table[shard] = queue

    def shards_on(self, queue: int) -> List[int]:
        return [s for s, q in enumerate(self.table) if q == queue]
