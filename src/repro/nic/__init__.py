"""NIC substrate: RSS/Toeplitz, descriptor rings, steering, line-rate model."""

from .nic import ETHERNET_OVERHEAD_BYTES, MIN_FRAME_BYTES, Nic, SteeringMode
from .queues import DEFAULT_DESCRIPTORS, RxQueue
from .rss import (
    MSFT_RSS_KEY,
    SYMMETRIC_RSS_KEY,
    RssIndirection,
    hash_input_l2,
    hash_input_l3,
    hash_input_l4,
    toeplitz_hash,
    toeplitz_hash_batch,
)

__all__ = [
    "ETHERNET_OVERHEAD_BYTES",
    "MIN_FRAME_BYTES",
    "Nic",
    "SteeringMode",
    "DEFAULT_DESCRIPTORS",
    "RxQueue",
    "MSFT_RSS_KEY",
    "SYMMETRIC_RSS_KEY",
    "RssIndirection",
    "hash_input_l2",
    "hash_input_l3",
    "hash_input_l4",
    "toeplitz_hash",
    "toeplitz_hash_batch",
]
