"""The Appendix A analytic throughput model.

With ``k`` cores, dispatch ``d``, current-packet compute ``c1`` and
per-history-item transition ``c2`` (all ns), each piggybacked packet costs
``t + (k-1)·c2`` where ``t = d + c1``, and the system processes external
packets at ``k / (t + (k-1)·c2)`` per nanosecond.  When ``t ≫ (k-1)·c2``
this is ≈ ``k/t`` — linear in cores.  Figure 11 shows the model matches the
measured SCR throughput; ``benchmarks/bench_fig11_model.py`` regenerates
that comparison against our simulator.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..cpu.costmodel import TABLE4_PARAMS, CostParams

__all__ = [
    "predicted_scr_pps",
    "predicted_scr_mpps",
    "predicted_series",
    "linear_scaling_limit",
    "fit_cost_params",
]


def predicted_scr_pps(costs: CostParams, num_cores: int) -> float:
    """Predicted SCR packets/second for ``num_cores`` (Appendix A)."""
    if num_cores < 1:
        raise ValueError("need at least one core")
    per_packet_ns = costs.t + (num_cores - 1) * costs.c2
    return num_cores / per_packet_ns * 1e9


def predicted_scr_mpps(costs: CostParams, num_cores: int) -> float:
    return predicted_scr_pps(costs, num_cores) / 1e6


def predicted_series(
    program_name: str, cores: Iterable[int]
) -> List[Tuple[int, float]]:
    """(cores, predicted Mpps) series for a Table 4 program."""
    costs = TABLE4_PARAMS[program_name]
    return [(k, predicted_scr_mpps(costs, k)) for k in cores]


def fit_cost_params(
    measurements: Sequence[Tuple[int, float]], dispatch_fraction: float = 0.75
) -> CostParams:
    """Recover (t, c2) from measured (cores, pps) points — Appendix A inverted.

    The model says per-packet time ``T(k) = k / pps(k) = t + (k-1)·c2``, a
    line in ``k-1``; ordinary least squares on the measured points yields
    intercept ``t`` and slope ``c2``.  This is how one would calibrate the
    simulator for a *new* program from two or more MLFFR measurements.

    ``dispatch_fraction`` apportions ``t`` between ``d`` and ``c1`` for
    callers that need the split (the model itself only uses t and c2).
    """
    if len(measurements) < 2:
        raise ValueError("need at least two (cores, pps) measurements")
    xs, ys = [], []
    for cores, pps in measurements:
        if cores < 1 or pps <= 0:
            raise ValueError(f"invalid measurement ({cores}, {pps})")
        xs.append(cores - 1)
        ys.append(cores / pps * 1e9)  # per-packet ns
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        raise ValueError("measurements must span more than one core count")
    c2 = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
    t = mean_y - c2 * mean_x
    c2 = max(0.0, c2)
    t = max(1e-9, t)
    return CostParams(
        t=t, c2=c2, d=t * dispatch_fraction, c1=t * (1 - dispatch_fraction)
    )


def linear_scaling_limit(costs: CostParams, efficiency: float = 0.5) -> int:
    """The core count where SCR's per-core rate drops to ``efficiency`` of
    the single-core rate — i.e. where history compute has grown to rival
    ``t`` (Principle #3's taper point).

    Solves ``t / (t + (k-1)·c2) = efficiency`` for k.
    """
    if not 0 < efficiency < 1:
        raise ValueError("efficiency must be in (0, 1)")
    if costs.c2 <= 0:
        return 10**9  # a stateless program never tapers from history work
    k = 1 + costs.t * (1 - efficiency) / (efficiency * costs.c2)
    return max(1, int(k))
