"""Measurement: MLFFR search, analytic model, experiment runner, reports."""

from .export import scaling_points_to_csv, series_to_csv, write_csv
from .mlffr import LOSS_THRESHOLD, SEARCH_TOLERANCE_PPS, MlffrResult, find_mlffr
from .model import (
    fit_cost_params,
    linear_scaling_limit,
    predicted_scr_mpps,
    predicted_scr_pps,
    predicted_series,
)
from .report import format_mpps, render_scaling_series, render_table
from .runner import (
    PACKET_SIZE_CONNTRACK,
    PACKET_SIZE_DEFAULT,
    ExperimentRunner,
    ScalingPoint,
)

__all__ = [
    "LOSS_THRESHOLD",
    "SEARCH_TOLERANCE_PPS",
    "MlffrResult",
    "find_mlffr",
    "scaling_points_to_csv",
    "series_to_csv",
    "write_csv",
    "fit_cost_params",
    "linear_scaling_limit",
    "predicted_scr_mpps",
    "predicted_scr_pps",
    "predicted_series",
    "format_mpps",
    "render_scaling_series",
    "render_table",
    "PACKET_SIZE_CONNTRACK",
    "PACKET_SIZE_DEFAULT",
    "ExperimentRunner",
    "ScalingPoint",
]
