"""Experiment runner — now a thin compatibility shim over the scenario layer.

Historically this module hand-wired trace synthesis → engine → MLFFR with
its own caches; that wiring (and the packet-size/seed conventions) lives
in :mod:`repro.scenario` now.  :class:`ExperimentRunner` keeps its full
public API — figures, the perf suite, and tests built on it keep working
unchanged — but every method delegates to :class:`~repro.scenario.build.
StackBuilder` / :func:`~repro.scenario.build.run_scenario`, so runner
results and scenario results are the same numbers by construction.

The defaults mirror §4.1/§4.2: 192-byte packets for most programs, 256
bytes for the connection tracker (whose metadata is larger).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..cpu.simulator import PerfTrace
from ..programs.base import PacketProgram
from ..scenario.build import StackBuilder, run_scenario
from ..scenario.cache import TraceCache
from ..scenario.spec import (
    PACKET_SIZE_CONNTRACK,
    PACKET_SIZE_DEFAULT,
    Scenario,
    TraceSpec,
    packet_size_for,
)
from ..telemetry.artifact import Telemetry
from ..traffic.trace import Trace
from .mlffr import MlffrResult

__all__ = [
    "PACKET_SIZE_DEFAULT",
    "PACKET_SIZE_CONNTRACK",
    "ScalingPoint",
    "ExperimentRunner",
]


@dataclass
class ScalingPoint:
    """One point of a throughput-vs-cores series."""

    technique: str
    cores: int
    mlffr_mpps: float
    iterations: int = 0


class ExperimentRunner:
    """Per-run facade over the scenario layer's composition root.

    Workload construction is memoized by the underlying
    :class:`StackBuilder` (and optionally persisted through a
    :class:`TraceCache`), so a figure's sweep synthesizes each trace
    once.  New code should use :class:`~repro.scenario.Scenario` and
    :class:`~repro.scenario.ScenarioExecutor` directly.
    """

    def __init__(
        self,
        num_flows: int = 60,
        max_packets: int = 4000,
        seed: int = 7,
        line_rate_gbps: float = 100.0,
        telemetry: Optional[Telemetry] = None,
        cache: Optional[TraceCache] = None,
    ) -> None:
        self.num_flows = num_flows
        self.max_packets = max_packets
        self.seed = seed
        self.line_rate_gbps = line_rate_gbps
        #: optional instrumentation: probe events, per-point gauges, and the
        #: counters/latency snapshot at each reported MLFFR.
        self.telemetry = telemetry
        self._builder = StackBuilder(cache)
        #: counters snapshot from the most recent mlffr_point (telemetry on).
        self.last_counters: Optional[dict] = None
        #: latency percentiles from the most recent mlffr_point.
        self.last_latency_ns: Optional[dict] = None

    @property
    def builder(self) -> StackBuilder:
        """The underlying composition root (shared with new-style callers)."""
        return self._builder

    @property
    def cache(self) -> Optional[TraceCache]:
        return self._builder.cache

    @property
    def _traces(self) -> Dict[TraceSpec, Trace]:
        """Builder-owned trace memo (kept for seed-isolation checks)."""
        return self._builder._traces

    @property
    def _perf(self) -> Dict[Tuple[str, TraceSpec], PerfTrace]:
        return self._builder._perf

    def clone_with_seed(self, seed: int) -> "ExperimentRunner":
        """A fresh runner with the same config but a different synthesis seed.

        The perf suite's median-of-k repetitions re-synthesize the workload
        per repetition (seed = base + rep index) so the reported MAD
        captures workload-sampling noise; in-memory memos are per-runner,
        so clones never mix traces across seeds (the disk cache keys on
        the seed, so sharing it is safe).
        """
        return ExperimentRunner(
            num_flows=self.num_flows,
            max_packets=self.max_packets,
            seed=seed,
            line_rate_gbps=self.line_rate_gbps,
            telemetry=self.telemetry,
            cache=self._builder.cache,
        )

    # -- workload construction ----------------------------------------------------

    def packet_size_for(self, program_name: str) -> int:
        return packet_size_for(program_name)

    def _trace_spec(
        self,
        trace_name: str,
        bidirectional: bool,
        packet_size: Optional[int],
        num_flows: Optional[int] = None,
        max_packets: Optional[int] = None,
    ) -> TraceSpec:
        return TraceSpec(
            workload=trace_name,
            num_flows=num_flows if num_flows is not None else self.num_flows,
            max_packets=max_packets if max_packets is not None else self.max_packets,
            seed=self.seed,
            bidirectional=bidirectional,
            packet_size=packet_size,
        )

    def trace_for(
        self,
        trace_name: str,
        bidirectional: bool,
        packet_size: int,
        num_flows: Optional[int] = None,
        max_packets: Optional[int] = None,
    ) -> Trace:
        """A synthesized evaluation trace, truncated to ``packet_size``."""
        return self._builder.trace(
            self._trace_spec(
                trace_name, bidirectional, packet_size, num_flows, max_packets
            )
        )

    def perf_trace_for(
        self,
        program: PacketProgram,
        trace_name: str,
        packet_size: Optional[int] = None,
        num_flows: Optional[int] = None,
        max_packets: Optional[int] = None,
    ) -> PerfTrace:
        size = packet_size if packet_size is not None else packet_size_for(program.name)
        return self._builder.perf_trace(
            program.name,
            self._trace_spec(
                trace_name, program.bidirectional, size, num_flows, max_packets
            ),
        )

    # -- sweeps ---------------------------------------------------------------------

    def scenario_for(
        self,
        program_name: str,
        trace_name: str,
        technique: str,
        cores: int,
        packet_size: Optional[int] = None,
        engine_kwargs: Optional[dict] = None,
        burst_size: int = 1,
    ) -> Scenario:
        """This runner's config as a frozen :class:`Scenario`."""
        return Scenario.create(
            program_name,
            trace_name,
            technique,
            cores,
            num_flows=self.num_flows,
            max_packets=self.max_packets,
            seed=self.seed,
            packet_size=packet_size,
            line_rate_gbps=self.line_rate_gbps,
            burst_size=burst_size,
            engine_kwargs=engine_kwargs,
        )

    def mlffr_point(
        self,
        program_name: str,
        trace_name: str,
        technique: str,
        cores: int,
        packet_size: Optional[int] = None,
        engine_kwargs: Optional[dict] = None,
        burst_size: int = 1,
    ) -> MlffrResult:
        scenario = self.scenario_for(
            program_name,
            trace_name,
            technique,
            cores,
            packet_size=packet_size,
            engine_kwargs=engine_kwargs,
            burst_size=burst_size,
        )
        result = run_scenario(
            scenario, builder=self._builder, telemetry=self.telemetry
        )
        if result.counters is not None:
            self.last_counters = result.counters
        if result.latency_ns is not None:
            self.last_latency_ns = result.latency_ns
        assert result.mlffr is not None  # in-process runs keep the payload
        return result.mlffr

    def scaling_sweep(
        self,
        program_name: str,
        trace_name: str,
        techniques: Iterable[str],
        cores_list: Iterable[int],
        packet_size: Optional[int] = None,
        engine_kwargs_by_technique: Optional[Dict[str, dict]] = None,
    ) -> List[ScalingPoint]:
        """MLFFR for every (technique, cores) pair — one Figure 6/7 panel."""
        points = []
        kwargs_map = engine_kwargs_by_technique or {}
        for technique in techniques:
            for cores in cores_list:
                res = self.mlffr_point(
                    program_name,
                    trace_name,
                    technique,
                    cores,
                    packet_size=packet_size,
                    engine_kwargs=kwargs_map.get(technique),
                )
                points.append(
                    ScalingPoint(
                        technique=technique,
                        cores=cores,
                        mlffr_mpps=res.mlffr_mpps,
                        iterations=res.iterations,
                    )
                )
        return points
