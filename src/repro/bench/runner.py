"""Experiment runner: the glue that turns (program, trace, technique, cores)
tuples into MLFFR numbers, with trace/perf-trace caching so a figure's sweep
doesn't resynthesize its workload per point.

The defaults mirror §4.1/§4.2: 192-byte packets for most programs, 256 bytes
for the connection tracker (whose metadata is larger), loss-free SCR unless
a run asks for recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..cpu.simulator import PerfTrace
from ..parallel.registry import make_engine
from ..programs.base import PacketProgram
from ..programs.registry import make_program
from ..telemetry.artifact import Telemetry
from ..telemetry.events import NULL_TRACER
from ..traffic.distributions import TRACE_DISTRIBUTIONS
from ..traffic.synthesis import single_flow_trace, synthesize_trace
from ..traffic.trace import Trace
from .mlffr import MlffrResult, find_mlffr

__all__ = [
    "PACKET_SIZE_DEFAULT",
    "PACKET_SIZE_CONNTRACK",
    "ScalingPoint",
    "ExperimentRunner",
]

#: Fixed packet sizes used across baselines (§4.2).
PACKET_SIZE_DEFAULT = 192
PACKET_SIZE_CONNTRACK = 256


@dataclass
class ScalingPoint:
    """One point of a throughput-vs-cores series."""

    technique: str
    cores: int
    mlffr_mpps: float
    iterations: int = 0


class ExperimentRunner:
    """Caches synthesized traces and lowered perf-traces across sweeps."""

    def __init__(
        self,
        num_flows: int = 60,
        max_packets: int = 4000,
        seed: int = 7,
        line_rate_gbps: float = 100.0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.num_flows = num_flows
        self.max_packets = max_packets
        self.seed = seed
        self.line_rate_gbps = line_rate_gbps
        #: optional instrumentation: probe events, per-point gauges, and the
        #: counters/latency snapshot at each reported MLFFR.
        self.telemetry = telemetry
        self._traces: Dict[tuple, Trace] = {}
        self._perf: Dict[tuple, PerfTrace] = {}
        #: counters snapshot from the most recent mlffr_point (telemetry on).
        self.last_counters: Optional[dict] = None
        #: latency percentiles from the most recent mlffr_point.
        self.last_latency_ns: Optional[dict] = None

    def clone_with_seed(self, seed: int) -> "ExperimentRunner":
        """A fresh runner with the same config but a different synthesis seed.

        The perf suite's median-of-k repetitions re-synthesize the workload
        per repetition (seed = base + rep index) so the reported MAD
        captures workload-sampling noise; caches are per-runner, so clones
        never mix traces across seeds.
        """
        return ExperimentRunner(
            num_flows=self.num_flows,
            max_packets=self.max_packets,
            seed=seed,
            line_rate_gbps=self.line_rate_gbps,
            telemetry=self.telemetry,
        )

    # -- workload construction ----------------------------------------------------

    def packet_size_for(self, program_name: str) -> int:
        return PACKET_SIZE_CONNTRACK if program_name == "conntrack" else PACKET_SIZE_DEFAULT

    def trace_for(
        self,
        trace_name: str,
        bidirectional: bool,
        packet_size: int,
        num_flows: Optional[int] = None,
        max_packets: Optional[int] = None,
    ) -> Trace:
        """A synthesized evaluation trace, truncated to ``packet_size``."""
        flows = num_flows if num_flows is not None else self.num_flows
        cap = max_packets if max_packets is not None else self.max_packets
        key = (trace_name, bidirectional, packet_size, flows, cap)
        if key not in self._traces:
            if trace_name == "single-flow":
                trace = single_flow_trace(cap // 2, bidirectional=bidirectional)
            else:
                dist = TRACE_DISTRIBUTIONS[trace_name]()
                # A short flow interarrival keeps many flows concurrently
                # active inside the packet cap, as in the real captures
                # ("states created and destroyed throughout", §4.1).
                trace = synthesize_trace(
                    dist,
                    flows,
                    seed=self.seed,
                    bidirectional=bidirectional,
                    mean_flow_interarrival_ns=3_000,
                    flow_duration_ns=200_000,
                    max_packets=cap,
                )
            self._traces[key] = trace.truncated(packet_size)
        return self._traces[key]

    def perf_trace_for(
        self,
        program: PacketProgram,
        trace_name: str,
        packet_size: Optional[int] = None,
        num_flows: Optional[int] = None,
        max_packets: Optional[int] = None,
    ) -> PerfTrace:
        size = packet_size if packet_size is not None else self.packet_size_for(program.name)
        key = (program.name, trace_name, size, num_flows, max_packets)
        if key not in self._perf:
            trace = self.trace_for(
                trace_name,
                bidirectional=program.bidirectional,
                packet_size=size,
                num_flows=num_flows,
                max_packets=max_packets,
            )
            self._perf[key] = PerfTrace.from_trace(trace, program)
        return self._perf[key]

    # -- sweeps ---------------------------------------------------------------------

    def mlffr_point(
        self,
        program_name: str,
        trace_name: str,
        technique: str,
        cores: int,
        packet_size: Optional[int] = None,
        engine_kwargs: Optional[dict] = None,
        burst_size: int = 1,
    ) -> MlffrResult:
        program = make_program(program_name)
        perf_trace = self.perf_trace_for(program, trace_name, packet_size=packet_size)
        kwargs = dict(engine_kwargs or {})
        tele = self.telemetry
        instrumented = tele is not None and tele.enabled
        if instrumented:
            kwargs.setdefault("tracer", tele.tracer)
        engine = make_engine(technique, program, cores, **kwargs)
        res = find_mlffr(
            perf_trace,
            engine,
            line_rate_gbps=self.line_rate_gbps,
            burst_size=burst_size,
            tracer=tele.tracer if instrumented else NULL_TRACER,
            collect_latency=instrumented,
        )
        if instrumented:
            self._record_point(program_name, trace_name, technique, cores, res)
        return res

    def _record_point(
        self,
        program_name: str,
        trace_name: str,
        technique: str,
        cores: int,
        res: MlffrResult,
    ) -> None:
        """Fold one MLFFR point into the telemetry registry."""
        reg = self.telemetry.registry
        labels = (
            f'program="{program_name}",workload="{trace_name}",'
            f'technique="{technique}",cores="{cores}"'
        )
        reg.gauge(
            "mlffr_mpps{%s}" % labels,
            help="maximum loss-free forwarding rate in Mpps (RFC 2544, <4% loss)",
        ).set(res.mlffr_mpps)
        reg.counter("mlffr_search_iterations").inc(res.iterations)
        best = res.result_at_mlffr
        if best is None:
            return
        self.last_counters = best.counters.snapshot()
        hist = best.latency_histogram
        if hist is not None and hist.count:
            self.last_latency_ns = hist.percentiles()
            reg.histogram(
                "latency_ns", help="per-packet latency at MLFFR"
            ).merge(hist)

    def scaling_sweep(
        self,
        program_name: str,
        trace_name: str,
        techniques: Iterable[str],
        cores_list: Iterable[int],
        packet_size: Optional[int] = None,
        engine_kwargs_by_technique: Optional[Dict[str, dict]] = None,
    ) -> List[ScalingPoint]:
        """MLFFR for every (technique, cores) pair — one Figure 6/7 panel."""
        points = []
        kwargs_map = engine_kwargs_by_technique or {}
        for technique in techniques:
            for cores in cores_list:
                res = self.mlffr_point(
                    program_name,
                    trace_name,
                    technique,
                    cores,
                    packet_size=packet_size,
                    engine_kwargs=kwargs_map.get(technique),
                )
                points.append(
                    ScalingPoint(
                        technique=technique,
                        cores=cores,
                        mlffr_mpps=res.mlffr_mpps,
                        iterations=res.iterations,
                    )
                )
        return points
