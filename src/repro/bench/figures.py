"""Figure presets: the paper's evaluation experiments as data.

Each preset names a figure, its workload, and the (program, trace,
techniques, cores) grid that regenerates it.  ``benchmarks/`` and the CLI's
``reproduce`` subcommand both consume these, so the experiment definitions
live in exactly one place.  A preset expands to a list of frozen
:class:`~repro.scenario.Scenario` specs (:func:`preset_scenarios`), so the
same grid runs identically through a serial runner or a multiprocess
:class:`~repro.scenario.ScenarioExecutor`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..scenario.build import run_scenario
from ..scenario.executor import ScenarioExecutor
from ..scenario.spec import Scenario
from .runner import ExperimentRunner, ScalingPoint

__all__ = [
    "FigurePreset",
    "FIGURE_PRESETS",
    "preset_scenarios",
    "run_preset",
    "run_preset_points",
]

# SCR_FULL_SWEEP=1 sweeps every core count, as the paper's plots do.
if os.environ.get("SCR_FULL_SWEEP"):
    _CORES_7 = tuple(range(1, 8))
    _CORES_14 = tuple(range(1, 15))
else:
    _CORES_7 = (1, 2, 4, 7)
    _CORES_14 = (1, 2, 4, 7, 10, 14)

#: §4.2: the fixed packet sizes budget the history in-frame, so SCR's
#: prefix does not additionally inflate the wire.
_SCR_IN_FRAME = {"count_wire_overhead": False}


@dataclass(frozen=True)
class FigurePreset:
    """One throughput-vs-cores panel from the paper."""

    figure: str
    program: str
    trace: str
    cores: Tuple[int, ...]
    techniques: Tuple[str, ...] = ("scr", "shared", "rss", "rss++")
    packet_size: Optional[int] = None
    scr_kwargs: Optional[dict] = None

    def describe(self) -> str:
        return f"Figure {self.figure}: {self.program} on {self.trace}"


FIGURE_PRESETS: Dict[str, FigurePreset] = {
    "1": FigurePreset("1", "conntrack", "single-flow", _CORES_7,
                      scr_kwargs=_SCR_IN_FRAME),
    "6a": FigurePreset("6a", "ddos", "caida", _CORES_14, scr_kwargs=_SCR_IN_FRAME),
    "6b": FigurePreset("6b", "heavy_hitter", "caida", _CORES_7,
                       scr_kwargs=_SCR_IN_FRAME),
    "6c": FigurePreset("6c", "port_knocking", "caida", _CORES_14,
                       scr_kwargs=_SCR_IN_FRAME),
    "6d": FigurePreset("6d", "token_bucket", "caida", _CORES_7,
                       scr_kwargs=_SCR_IN_FRAME),
    "6e": FigurePreset("6e", "ddos", "univ_dc", _CORES_14, scr_kwargs=_SCR_IN_FRAME),
    "6f": FigurePreset("6f", "heavy_hitter", "univ_dc", _CORES_7,
                       scr_kwargs=_SCR_IN_FRAME),
    "6g": FigurePreset("6g", "token_bucket", "univ_dc", _CORES_7,
                       scr_kwargs=_SCR_IN_FRAME),
    "6h": FigurePreset("6h", "port_knocking", "univ_dc", _CORES_14,
                       scr_kwargs=_SCR_IN_FRAME),
    "7": FigurePreset("7", "conntrack", "hyperscalar_dc", _CORES_7,
                      scr_kwargs=_SCR_IN_FRAME),
    "10a": FigurePreset("10a", "token_bucket", "univ_dc",
                        (1, 2, 4, 7, 10, 12, 14, 16, 18), packet_size=64),
}


def preset_scenarios(
    preset: FigurePreset, runner: Optional[ExperimentRunner] = None
) -> List[Scenario]:
    """The preset's (technique × cores) grid as frozen scenarios, in the
    historical sweep order (techniques outer, cores inner).

    Workload knobs (flows, packet cap, seed, line rate) come from
    ``runner``'s config — or the stock defaults when omitted.
    """
    runner = runner if runner is not None else ExperimentRunner()
    return [
        runner.scenario_for(
            preset.program,
            preset.trace,
            technique,
            cores,
            packet_size=preset.packet_size,
            engine_kwargs=preset.scr_kwargs if technique == "scr" else None,
        )
        for technique in preset.techniques
        for cores in preset.cores
    ]


def run_preset_points(
    preset: FigurePreset,
    runner: Optional[ExperimentRunner] = None,
    executor: Optional[ScenarioExecutor] = None,
) -> List[ScalingPoint]:
    """Measure a preset as :class:`ScalingPoint` rows (with MLFFR probe
    counts), optionally fanned out over ``executor``'s worker pool."""
    runner = runner if runner is not None else ExperimentRunner()
    grid = preset_scenarios(preset, runner)
    if executor is not None:
        results = executor.run(grid)
    else:
        results = [
            run_scenario(s, builder=runner.builder, telemetry=runner.telemetry)
            for s in grid
        ]
    return [
        ScalingPoint(
            technique=s.technique,
            cores=s.cores,
            mlffr_mpps=r.mlffr_mpps,
            iterations=r.iterations,
        )
        for s, r in zip(grid, results)
    ]


def run_preset(
    preset: FigurePreset,
    runner: Optional[ExperimentRunner] = None,
    executor: Optional[ScenarioExecutor] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Measure a preset; returns technique → [(cores, Mpps), ...]."""
    series: Dict[str, List[Tuple[int, float]]] = {
        technique: [] for technique in preset.techniques
    }
    for point in run_preset_points(preset, runner, executor):
        series[point.technique].append((point.cores, point.mlffr_mpps))
    return series
