"""CSV export of experiment results, for plotting outside this repo."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from .runner import ScalingPoint

__all__ = ["write_csv", "scaling_points_to_csv", "series_to_csv"]


def write_csv(
    path: Union[str, Path], headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> Path:
    """Write rows to ``path`` as CSV; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


def scaling_points_to_csv(points: List[ScalingPoint], path: Union[str, Path]) -> Path:
    """One row per (technique, cores) MLFFR measurement."""
    return write_csv(
        path,
        ["technique", "cores", "mlffr_mpps", "search_iterations"],
        [
            [p.technique, p.cores, f"{p.mlffr_mpps:.4f}", p.iterations]
            for p in points
        ],
    )


def series_to_csv(
    series: Dict[str, List[Tuple[int, float]]], path: Union[str, Path]
) -> Path:
    """Wide format: one column per technique, one row per core count."""
    cores = sorted({c for pts in series.values() for c, _ in pts})
    names = list(series)
    lookup = {n: dict(pts) for n, pts in series.items()}
    rows = []
    for c in cores:
        row: List[object] = [c]
        for n in names:
            value = lookup[n].get(c)
            row.append("" if value is None else f"{value:.4f}")
        rows.append(row)
    return write_csv(path, ["cores"] + names, rows)
