"""Maximum loss-free forwarding rate (MLFFR) measurement — §4.1.

The paper benchmarks throughput per RFC 2544's MLFFR methodology [5], with
two practical adjustments it spells out: "loss-free" means **< 4 % loss**
(high-speed software always drops a little burstily), and the binary search
stops when the bounds are **within 0.4 Mpps**.  Both defaults are mirrored
here.  An exponential probe first brackets the rate, then bisection narrows
it; the reported figure is the highest rate observed to be loss-free.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..cpu.simulator import PerfEngine, PerfTrace, SimResult, simulate
from ..hostprof.clock import NULL_HOSTPROF, PhaseClock
from ..obs.spans import NULL_SPANS, SpanEmitter
from ..telemetry.events import EV_MLFFR_PROBE, NULL_TRACER, EventTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.plan import FaultPlan

__all__ = ["MlffrResult", "find_mlffr", "LOSS_THRESHOLD", "SEARCH_TOLERANCE_PPS"]

#: < 4 % loss counts as loss-free (§4.1).
LOSS_THRESHOLD = 0.04
#: stop when search bounds are within 0.4 Mpps (§4.1).
SEARCH_TOLERANCE_PPS = 0.4e6


@dataclass
class MlffrResult:
    """Outcome of one MLFFR search."""

    mlffr_pps: float
    iterations: int
    #: the simulation at the reported rate (for counters inspection).
    result_at_mlffr: Optional[SimResult] = None
    probes: List[Tuple[float, float]] = field(default_factory=list)  # (rate, loss)

    @property
    def mlffr_mpps(self) -> float:
        return self.mlffr_pps / 1e6

    def to_dict(self) -> dict:
        """JSON-safe summary (for bench artifacts; probes aid debugging)."""
        return {
            "mlffr_mpps": self.mlffr_mpps,
            "iterations": self.iterations,
            "probes": [
                {"rate_mpps": rate / 1e6, "loss": loss}
                for rate, loss in self.probes
            ],
        }


def find_mlffr(
    perf_trace: PerfTrace,
    engine: PerfEngine,
    start_pps: float = 1e6,
    max_pps: float = 400e6,
    loss_threshold: float = LOSS_THRESHOLD,
    tolerance_pps: float = SEARCH_TOLERANCE_PPS,
    line_rate_gbps: float = 100.0,
    burst_size: int = 1,
    tracer: EventTracer = NULL_TRACER,
    collect_latency: bool = False,
    faults: Optional["FaultPlan"] = None,
    spans: SpanEmitter = NULL_SPANS,
    hostprof: PhaseClock = NULL_HOSTPROF,
) -> MlffrResult:
    """Binary-search the highest offered rate with loss below threshold.

    ``tracer`` receives one ``mlffr.probe`` event per search step (rate,
    loss, verdict) and is forwarded to every probe's simulation.
    ``collect_latency`` makes each probe gather latency samples, so
    ``result_at_mlffr`` carries the percentile histogram.

    ``faults`` applies the same index-keyed fault schedule to every
    probe (a FaultPlan is rate-independent by construction), so the
    search measures MLFFR *under* that fault regime — injected drops
    count toward the loss threshold exactly like congestion drops.

    ``spans`` forwards to every probe's simulation; which packets are
    sampled is index-keyed, so all probes trace the same packets.

    ``hostprof`` wraps every probe in a ``sim.run`` wall-clock phase and
    forwards into the simulator's inner loop; wall readings never feed
    simulated time, so results are bit-identical either way.
    """
    if start_pps <= 0:
        raise ValueError("start rate must be positive")

    probes: List[Tuple[float, float]] = []
    best_result: Optional[SimResult] = None
    iterations = 0

    def lossfree(rate: float) -> bool:
        nonlocal best_result, iterations
        iterations += 1
        with hostprof.phase("sim.run"):
            res = simulate(
                perf_trace,
                rate,
                engine,
                line_rate_gbps=line_rate_gbps,
                burst_size=burst_size,
                tracer=tracer,
                collect_latency=collect_latency,
                faults=faults,
                spans=spans,
                hostprof=hostprof,
            )
        probes.append((rate, res.loss_fraction))
        ok = res.loss_fraction <= loss_threshold
        if tracer.enabled:
            tracer.emit(EV_MLFFR_PROBE, rate_pps=rate,
                        loss=res.loss_fraction, iteration=iterations,
                        lossfree=ok)
        if ok:
            if best_result is None or rate > best_result.rate_pps:
                best_result = res
                # The engine mutates one counters object in place across
                # probes; freeze this probe's attribution so the reported
                # point's counters survive later (lossy) probes.
                best_result.counters = copy.deepcopy(res.counters)
        return ok

    # Exponential bracket: find lo feasible, hi infeasible.
    lo = start_pps
    if not lossfree(lo):
        # Even the start rate loses packets; search downward instead.
        hi = lo
        lo = lo / 2
        while lo > tolerance_pps and not lossfree(lo):
            hi = lo
            lo /= 2
        if lo <= tolerance_pps and not probes[-1][1] <= loss_threshold:
            return MlffrResult(0.0, iterations, None, probes)
    else:
        hi = lo * 2
        while hi < max_pps and lossfree(hi):
            lo = hi
            hi *= 2
        if hi >= max_pps:
            hi = max_pps
            if lossfree(hi):
                return MlffrResult(hi, iterations, best_result, probes)

    # Bisect [lo feasible, hi infeasible] down to the tolerance window.
    while hi - lo > tolerance_pps:
        mid = (lo + hi) / 2
        if lossfree(mid):
            lo = mid
        else:
            hi = mid
    return MlffrResult(lo, iterations, best_result, probes)
