"""Plain-text rendering of the tables and series the benchmarks print."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["render_table", "render_scaling_series", "format_mpps"]


def format_mpps(value: float) -> str:
    return f"{value:7.2f}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Aligned monospace table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_scaling_series(
    points_by_technique: Dict[str, List[Tuple[int, float]]], title: str = ""
) -> str:
    """Render throughput-vs-cores series, one column per technique.

    ``points_by_technique`` maps technique name → [(cores, mpps), ...].
    """
    cores = sorted({c for pts in points_by_technique.values() for c, _ in pts})
    techniques = list(points_by_technique)
    headers = ["cores"] + [f"{t} (Mpps)" for t in techniques]
    lookup = {
        t: {c: v for c, v in pts} for t, pts in points_by_technique.items()
    }
    rows = []
    for c in cores:
        row = [c]
        for t in techniques:
            v = lookup[t].get(c)
            row.append("-" if v is None else f"{v:.2f}")
        rows.append(row)
    return render_table(headers, rows, title=title)
