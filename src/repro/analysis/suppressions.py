"""Per-line and per-file suppression directives for scrlint.

Syntax (mirrors pylint/ruff conventions):

* ``# scrlint: disable=SCR002`` — suppress SCR002 findings reported on the
  same line, or (when the comment is a standalone comment line) on the next
  non-comment line.
* ``# scrlint: disable=SCR002,SCR005`` — several rules at once.
* ``# scrlint: disable=all`` — every rule on that line.
* ``# scrlint: disable-file=SCR003`` — suppress a rule for the whole file
  (place it anywhere; by convention near the top).

Suppressions are counted so the JSON report records how many findings were
muted — a suppression is an auditable exception, not a silent one.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Set

from .findings import Finding

__all__ = ["SuppressionIndex"]

_DIRECTIVE = re.compile(
    r"#\s*scrlint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def _parse_rules(raw: str) -> FrozenSet[str]:
    return frozenset(r.strip().upper() for r in raw.split(",") if r.strip())


class SuppressionIndex:
    """All suppression directives of one source file, queryable by finding."""

    def __init__(self, source: str) -> None:
        #: physical line number -> rule ids disabled on that line.
        self.line_rules: Dict[int, FrozenSet[str]] = {}
        #: rule ids disabled for the entire file.
        self.file_rules: Set[str] = set()
        #: line numbers whose directive sits on a comment-only line; such a
        #: directive also covers the statement that starts on the next line.
        self._comment_only: Set[int] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(line)
            if match is None:
                continue
            rules = _parse_rules(match.group("rules"))
            if match.group("kind") == "disable-file":
                self.file_rules |= rules
                continue
            self.line_rules[lineno] = rules
            if line.lstrip().startswith("#"):
                self._comment_only.add(lineno)

    def _line_disables(self, rule: str, lineno: int) -> bool:
        rules = self.line_rules.get(lineno)
        return rules is not None and (rule in rules or "ALL" in rules)

    def is_suppressed(self, finding: Finding) -> bool:
        rule = finding.rule.upper()
        if rule in self.file_rules or "ALL" in self.file_rules:
            return True
        if self._line_disables(rule, finding.line):
            return True
        # A standalone directive comment suppresses the line right below it.
        prev = finding.line - 1
        return prev in self._comment_only and self._line_disables(rule, prev)
