"""Run the scrlint rules over files and render reports.

The pytest-importable API is :func:`lint_paths` (and :func:`lint_source`
for in-memory fixtures); the CLI's ``scr-repro lint`` is a thin wrapper.
Suppressed findings are counted, never silently dropped from the totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .findings import Finding, findings_to_json, render_finding
from .model import ModuleModel
from .rules import Rule, all_rules
from .suppressions import SuppressionIndex

__all__ = [
    "DEFAULT_LINT_PATHS",
    "LintReport",
    "lint_paths",
    "lint_source",
    "format_text",
    "format_json",
]

#: What CI lints when no paths are given: the program zoo (SCR001/2/3/5),
#: the scaling engines (SCR004), the scenario layer (SCR004 — the
#: multiprocess executor's serial-equivalence guarantee depends on the
#: same no-clocks/no-process-RNG/no-module-state hygiene), the
#: fault/recovery subsystem (SCR006), and the span/SLO observability
#: layer (SCR004 + SCR006 — span sampling must stay pure-hash and the
#: SLO reducer side-effect free).
DEFAULT_LINT_PATHS: Tuple[str, ...] = (
    "src/repro/programs",
    "src/repro/parallel",
    "src/repro/scenario",
    "src/repro/faults",
    "src/repro/obs",
    "src/repro/hostprof",
    # The advisor stack lints itself: the dataflow classifier, the cost-
    # model advisor, the SARIF emitter, and the perf-layer glue are listed
    # as files (not the whole packages) because the rule registry and the
    # perf executors legitimately keep module state the engine-hygiene
    # rules would flag.
    "src/repro/analysis/dataflow.py",
    "src/repro/analysis/advisor.py",
    "src/repro/analysis/sarif.py",
    "src/repro/perf/advise.py",
    # The columnar hot path must satisfy the same replay-hygiene rules as
    # the engines it batches for (SCR004: no clocks, no process RNG).
    "src/repro/cpu/columnar.py",
    # Placement decisions feed the hybrid engine's routing, so the
    # classifier is held to the same determinism bar (SCR004).
    "src/repro/placement",
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        self.files_checked += other.files_checked


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint one source string (the unit the fixture tests drive)."""
    report = LintReport(files_checked=1)
    try:
        module = ModuleModel.from_source(path, source)
    except SyntaxError as exc:
        report.findings.append(Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule="SCR000",
            symbol="",
            message=f"cannot parse: {exc.msg}",
        ))
        return report
    suppressions = SuppressionIndex(source)
    raw: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        raw.extend(rule.check(module))
    for finding in sorted(set(raw)):
        if suppressions.is_suppressed(finding):
            report.suppressed += 1
        else:
            report.findings.append(finding)
    return report


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts))
        elif path.suffix == ".py" and path.exists():
            out.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw!r}")
    # Stable order, duplicates removed.
    return sorted(dict.fromkeys(out))


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint files/directories (default: the shipped zoo + engines)."""
    files = iter_python_files(paths or DEFAULT_LINT_PATHS)
    report = LintReport()
    for file_path in files:
        source = file_path.read_text()
        report.merge(lint_source(source, path=str(file_path), rules=rules))
    report.findings.sort()
    return report


def format_text(report: LintReport) -> str:
    """Compiler-style lines plus a one-line summary."""
    lines = [render_finding(f) for f in report.findings]
    by_rule: dict = {}
    for f in report.findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    if report.findings:
        breakdown = ", ".join(f"{r}: {n}" for r, n in sorted(by_rule.items()))
        summary = (f"{len(report.findings)} finding(s) [{breakdown}] in "
                   f"{report.files_checked} file(s)")
    else:
        summary = f"clean: {report.files_checked} file(s), 0 findings"
    if report.suppressed:
        summary += f" ({report.suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    return findings_to_json(
        report.findings,
        files_checked=report.files_checked,
        suppressed=report.suppressed,
    )
