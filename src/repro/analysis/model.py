"""AST model of a module under analysis.

scrlint never *imports* the code it checks — fixtures may be deliberately
broken, and importing a packet program could run arbitrary module-level
code.  Instead each file is parsed into a :class:`ModuleModel` that exposes
what the rules need:

* an **import table** mapping local names to their dotted origin
  (``from time import time`` makes ``time`` resolve to ``time.time``), so
  rules reason about *origins*, not spellings;
* **module-level assignments**, with a mutability classifier for the
  "module-level mutable global" checks (SCR001/SCR004);
* **classes** with their base chains resolved within the module, classified
  against the contract roots in :mod:`repro.programs.base`
  (``PacketProgram`` / ``PacketMetadata``) and ``BaseEngine``;
* per-class **method closures**: the methods reachable from a contract
  method through ``self.helper()`` calls, so a transition cannot hide a
  ``time.time()`` inside a private helper.

Resolution is textual and intra-module by design: a class is a packet
program iff its base chain (followed through classes defined in the same
file) reaches a name in ``PROGRAM_ROOTS``.  Cross-module inheritance of
*programs from programs* is not resolved — the zoo and the fixtures both
subclass the roots directly, and the limitation is documented in
``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ClassModel",
    "MethodModel",
    "ModuleModel",
    "PROGRAM_ROOTS",
    "METADATA_ROOTS",
    "ENGINE_ROOTS",
]

#: External base-class names that mark a class as a packet program,
#: a packet metadata layout, or a scaling-technique performance engine.
PROGRAM_ROOTS = frozenset({"PacketProgram"})
METADATA_ROOTS = frozenset({"PacketMetadata"})
ENGINE_ROOTS = frozenset({"BaseEngine", "PerfEngine"})

#: Constructors whose result is shared mutable storage when bound at module
#: (or class-body) level.
_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict",
})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)


@dataclass
class MethodModel:
    """One function defined directly in a class body."""

    name: str
    node: ast.FunctionDef
    class_name: str

    @property
    def arg_names(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    @property
    def symbol(self) -> str:
        return f"{self.class_name}.{self.name}"


@dataclass
class ClassModel:
    """One class definition plus the pieces the rules inspect."""

    name: str
    node: ast.ClassDef
    #: dotted base names as written (``PacketProgram``, ``base.PacketProgram``).
    bases: List[str]
    methods: Dict[str, MethodModel] = field(default_factory=dict)
    #: class-body ``NAME = <expr>`` assignments (targets that are plain names).
    assigns: Dict[str, ast.expr] = field(default_factory=dict)


def _dotted(expr: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ModuleModel:
    """Parsed view of one source file, as the rules see it."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: local name -> dotted origin ("random" -> "random",
        #: "time" (from ``from time import time``) -> "time.time").
        self.imports: Dict[str, str] = {}
        self.module_assigns: Dict[str, ast.expr] = {}
        self.classes: Dict[str, ClassModel] = {}
        self._scan()

    # -- construction -------------------------------------------------------

    @classmethod
    def from_source(cls, path: str, source: str) -> "ModuleModel":
        return cls(path, source, ast.parse(source, filename=path))

    def _scan(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    # Relative imports stay unresolved: their origins are
                    # inside this package, never a nondeterminism source.
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_assigns[target.id] = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    self.module_assigns[node.target.id] = node.value
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = self._scan_class(node)

    def _scan_class(self, node: ast.ClassDef) -> ClassModel:
        bases = [b for b in (_dotted(base) for base in node.bases) if b]
        model = ClassModel(name=node.name, node=node, bases=bases)
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                model.methods[item.name] = MethodModel(
                    name=item.name, node=item, class_name=node.name
                )
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        model.assigns[target.id] = item.value
            elif isinstance(item, ast.AnnAssign):
                if isinstance(item.target, ast.Name) and item.value is not None:
                    model.assigns[item.target.id] = item.value
        return model

    # -- name resolution ----------------------------------------------------

    def origin_of(self, expr: ast.expr) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, import table applied.

        ``time.monotonic()`` after ``import time as t`` spelled ``t.monotonic``
        resolves to ``time.monotonic``; ``urandom`` after ``from os import
        urandom`` resolves to ``os.urandom``.  Names that are not rooted in
        an import (locals, parameters, ``self``) resolve to None.
        """
        dotted = _dotted(expr)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        root = self.imports.get(head)
        if root is None:
            return None
        return f"{root}.{rest}" if rest else root

    def call_origin(self, call: ast.Call) -> Optional[str]:
        return self.origin_of(call.func)

    # -- mutability ---------------------------------------------------------

    def is_mutable_binding(self, value: ast.expr) -> bool:
        """Does this bound expression create shared mutable storage?"""
        if isinstance(value, _MUTABLE_LITERALS):
            return True
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is None:
                return False
            origin = self.origin_of(value.func) or dotted
            return (origin in _MUTABLE_CONSTRUCTORS
                    or dotted in _MUTABLE_CONSTRUCTORS)
        return False

    def mutable_globals(self) -> Dict[str, ast.expr]:
        """Module-level names bound to mutable storage (SCR001's hidden state).

        Dunder module attributes (``__all__`` and friends) are interpreter
        metadata, not program state, and are exempt.
        """
        return {
            name: value
            for name, value in self.module_assigns.items()
            if self.is_mutable_binding(value)
            and not (name.startswith("__") and name.endswith("__"))
        }

    # -- class classification -----------------------------------------------

    def _reaches(self, cls: ClassModel, roots: frozenset) -> bool:
        seen: Set[str] = set()
        stack = list(cls.bases)
        while stack:
            base = stack.pop()
            tail = base.split(".")[-1]
            if tail in roots:
                return True
            if tail in seen:
                continue
            seen.add(tail)
            parent = self.classes.get(tail)
            if parent is not None:
                stack.extend(parent.bases)
        return False

    def _classified(self, roots: frozenset) -> List[ClassModel]:
        # The root classes themselves (PacketProgram in base.py) are held to
        # their own contract too.
        return [
            c for c in self.classes.values()
            if c.name in roots or self._reaches(c, roots)
        ]

    def program_classes(self) -> List[ClassModel]:
        return self._classified(PROGRAM_ROOTS)

    def metadata_classes(self) -> List[ClassModel]:
        return self._classified(METADATA_ROOTS)

    def engine_classes(self) -> List[ClassModel]:
        return self._classified(ENGINE_ROOTS)

    # -- program-contract helpers -------------------------------------------

    def metadata_for(self, program: ClassModel) -> Optional[ClassModel]:
        """The statically-declared metadata class of a program, if resolvable.

        Requires a class-body ``metadata_cls = SomeName`` whose target is a
        metadata class defined in the same module.  Programs that build
        their metadata class dynamically (``ProgramChain``) return None and
        are exempt from the field-completeness checks.
        """
        value = program.assigns.get("metadata_cls")
        if not isinstance(value, ast.Name):
            return None
        candidate = self.classes.get(value.id)
        if candidate is not None and (
            candidate.name in METADATA_ROOTS
            or self._reaches(candidate, METADATA_ROOTS)
        ):
            return candidate
        return None

    def metadata_layout(
        self, metadata: ClassModel
    ) -> Tuple[Optional[str], Optional[Tuple[str, ...]]]:
        """(FORMAT, FIELDS) literals, following in-module inheritance."""
        fmt: Optional[str] = None
        fields: Optional[Tuple[str, ...]] = None
        chain: List[ClassModel] = []
        cursor: Optional[ClassModel] = metadata
        seen: Set[str] = set()
        while cursor is not None and cursor.name not in seen:
            seen.add(cursor.name)
            chain.append(cursor)
            nxt = None
            for base in cursor.bases:
                nxt = self.classes.get(base.split(".")[-1])
                if nxt is not None:
                    break
            cursor = nxt
        for cls in chain:  # nearest definition wins
            if fmt is None:
                value = cls.assigns.get("FORMAT")
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    fmt = value.value
            if fields is None:
                value = cls.assigns.get("FIELDS")
                if isinstance(value, (ast.Tuple, ast.List)):
                    elems = []
                    ok = True
                    for el in value.elts:
                        if isinstance(el, ast.Constant) and isinstance(el.value, str):
                            elems.append(el.value)
                        else:
                            ok = False
                            break
                    if ok:
                        fields = tuple(elems)
            if fmt is not None and fields is not None:
                break
        return fmt, fields

    def method_closure(
        self, program: ClassModel, start: Sequence[str]
    ) -> List[MethodModel]:
        """``start`` methods plus everything reachable via ``self.x()`` calls.

        Follows in-module inheritance for helper lookup; external helpers
        (inherited from ``PacketProgram`` itself) are trusted — the base
        class is checked on its own pass over ``programs/base.py``.
        """
        resolved: Dict[str, MethodModel] = {}
        ordered: List[MethodModel] = []
        pending = list(start)
        while pending:
            name = pending.pop(0)
            if name in resolved:
                continue
            method = self._lookup_method(program, name)
            if method is None:
                continue
            resolved[name] = method
            ordered.append(method)
            pending.extend(sorted(program_self_calls(method)))
        return ordered

    def _lookup_method(
        self, cls: ClassModel, name: str
    ) -> Optional[MethodModel]:
        seen: Set[str] = set()
        cursor: Optional[ClassModel] = cls
        while cursor is not None and cursor.name not in seen:
            seen.add(cursor.name)
            if name in cursor.methods:
                return cursor.methods[name]
            nxt = None
            for base in cursor.bases:
                nxt = self.classes.get(base.split(".")[-1])
                if nxt is not None:
                    break
            cursor = nxt
        return None


def program_self_calls(method: MethodModel) -> Set[str]:
    """Names called as ``self.name(...)`` anywhere in the method body."""
    called: Set[str] = set()
    for node in ast.walk(method.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            called.add(node.func.attr)
    return called
