"""SCR002 — ``transition`` must be pure.

§3.2 defines the state transition as a function ``(value, metadata) →
(value', verdict)``: *all* state it reads or writes flows through the
``value`` argument.  A transition that stores results on ``self``, mutates
a container hanging off ``self``, performs I/O, or reaches into a
``StateMap`` directly keeps per-core state the sequencer never replicates —
each replica's hidden copy drifts independently of the packet history.

Checked on ``transition`` and every helper it calls through ``self``
(``SCR_PURE_METHODS`` in ``programs/base.py``).  ``apply`` overrides (NAT,
chains) legitimately write their ``state`` *parameter* — that is the
replicated map itself — so ``apply`` is exempt here and covered by SCR001's
determinism closure instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ...programs.base import SCR_PURE_METHODS
from ..findings import Finding
from ..model import MethodModel, ModuleModel
from . import Rule, register

__all__ = ["PurityRule"]

#: method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "sort", "reverse", "write",
})

#: call origins that perform I/O; plus the bare builtins below.
_IO_MODULE_ROOTS = frozenset({"os", "sys", "io", "socket", "subprocess",
                              "pathlib", "logging"})
_IO_BUILTINS = frozenset({"open", "print", "input"})

#: StateMap's operations; calling them on a state-ish receiver from a
#: transition means the program is bypassing the value-in/value-out contract.
_STATEMAP_OPS = frozenset({"lookup", "delete", "update", "items", "snapshot"})


def _rooted_at_self(expr: ast.expr) -> bool:
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _names_a_state_map(expr: ast.expr) -> bool:
    """Does the receiver's dotted spelling mention a state map?

    ``state.lookup(...)``, ``self.state.update(...)``, and
    ``self._flow_state.delete(...)`` all qualify; ``self.maglev.lookup``
    (read-only config with a coincidental method name) does not.
    """
    parts = []
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return any("state" in part.lower() for part in parts)


@register
class PurityRule(Rule):
    id = "SCR002"
    title = ("transition must not mutate self, perform I/O, or reach into "
             "a StateMap — all state flows through the value argument")
    paper_ref = "§3.2"

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        seen: Set[int] = set()
        for program in module.program_classes():
            for method in module.method_closure(program, SCR_PURE_METHODS):
                if id(method.node) in seen:
                    continue
                seen.add(id(method.node))
                yield from self._check_method(module, program.name, method)

    def _check_method(
        self, module: ModuleModel, class_name: str, method: MethodModel
    ) -> Iterator[Finding]:
        symbol = f"{class_name}.{method.name}"
        for node in ast.walk(method.node):
            finding = self._check_node(module, symbol, node)
            if finding is not None:
                yield finding

    def _check_node(
        self, module: ModuleModel, symbol: str, node: ast.AST
    ) -> Optional[Finding]:
        # -- writes through self -------------------------------------------
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for el in _flatten_target(target):
                    if _rooted_at_self(el) and not isinstance(el, ast.Name):
                        return self.finding(
                            module, node, symbol,
                            "assigns through self — per-core hidden state "
                            "the sequencer never replicates (§3.2: return "
                            "the new value instead)",
                        )
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if _rooted_at_self(target) and not isinstance(target, ast.Name):
                    return self.finding(
                        module, node, symbol,
                        "deletes an attribute of self — mutation of "
                        "unreplicated per-core state (§3.2)",
                    )
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            return self.finding(
                module, node, symbol,
                "rebinds enclosing-scope state from a transition (§3.2)",
            )
        # -- calls ----------------------------------------------------------
        if isinstance(node, ast.Call):
            return self._check_call(module, symbol, node)
        # -- direct StateMap references -------------------------------------
        if isinstance(node, ast.Name) and node.id == "StateMap":
            return self.finding(
                module, node, symbol,
                "references StateMap inside a transition — state must "
                "arrive via the value argument (§3.2)",
            )
        return None

    def _check_call(
        self, module: ModuleModel, symbol: str, node: ast.Call
    ) -> Optional[Finding]:
        func = node.func
        # Builtin / module-rooted I/O.
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            return self.finding(
                module, node, symbol,
                f"I/O call {func.id}() in a transition — transitions run "
                "per packet on every replica and must stay pure (§3.2)",
            )
        origin = module.call_origin(node)
        if origin is not None and origin.split(".", 1)[0] in _IO_MODULE_ROOTS:
            return self.finding(
                module, node, symbol,
                f"I/O call {origin}() in a transition (§3.2)",
                origin=origin,
            )
        if isinstance(func, ast.Attribute):
            # Mutating a container reachable from self.
            if func.attr in _MUTATOR_METHODS and _rooted_at_self(func.value):
                return self.finding(
                    module, node, symbol,
                    f"mutates self.….{func.attr}() — per-core hidden "
                    "state; replicas drift (§3.2)",
                )
            # StateMap operations (state maps only enter a program through
            # apply(); a transition has no business touching one).
            if func.attr in _STATEMAP_OPS and _names_a_state_map(func.value):
                return self.finding(
                    module, node, symbol,
                    f"reaches into a StateMap (.{func.attr}()) from a "
                    "transition — all state flows through the value "
                    "argument (§3.2)",
                )
        return None


def _flatten_target(target: ast.expr) -> Iterator[ast.expr]:
    """Assignment targets, tuple/list destructuring unpacked."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for el in target.elts:
            yield from _flatten_target(el)
    else:
        yield target
