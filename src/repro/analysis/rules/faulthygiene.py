"""SCR006 — fault-handler hygiene: recovery code must replay from the seed.

The chaos gate's guarantees (``scr-repro chaos --jobs N`` byte-identical
to serial, 100% of injected gaps detected) hold only because every fault
decision is a pure function of ``(seed, tag, index)`` — the
:class:`~repro.faults.plan.FaultPlan` splitmix64 hash.  Fault-injection
and recovery code that reads a wall clock, or draws from *any*
``random``-module RNG, breaks that in one of two ways:

* **wall clocks** make quarantine/resync decisions depend on host timing,
  so a failure seen in CI cannot be replayed locally;
* **process RNGs** — even a *seeded* ``random.Random`` — are stateful:
  their draws depend on call order, which differs between serial and
  ``--jobs N`` execution and between MLFFR probe rates.  The sanctioned
  pattern is the plan's per-index hash, which is order-independent.

The rule covers every module under a ``faults`` package, plus any class
whose name marks it as fault/recovery machinery (``Fault*``,
``*Checkpoint*``, ``*Resync*``, ``*Quarantine*``, ``*Recovery*``,
``*Divergence*``) wherever it lives.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePath
from typing import Iterator, List, Tuple

from ..findings import Finding
from ..model import ModuleModel
from . import Rule, register
from .engines import _CLOCK_ORIGINS

__all__ = ["FaultHygieneRule"]

#: Class names that mark fault/recovery machinery outside repro/faults.
_RECOVERY_NAME = re.compile(
    r"Fault|Checkpoint|Resync|Quarantine|Recovery|Divergence"
)


@register
class FaultHygieneRule(Rule):
    id = "SCR006"
    title = ("fault/recovery code must not read wall clocks or process "
             "RNGs; randomness comes from the seeded FaultPlan hash")
    paper_ref = "§3.4 determinism, applied to the fault/recovery subsystem"

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        for symbol, root in self._scopes(module):
            yield from self._check_scope(module, symbol, root)

    def _scopes(self, module: ModuleModel) -> List[Tuple[str, ast.AST]]:
        """(symbol prefix, AST root) pairs the rule applies to."""
        if {"faults", "obs", "hostprof"} & set(PurePath(module.path).parts):
            return [("", module.tree)]
        return [
            (cls.name, cls.node)
            for cls in module.classes.values()
            if _RECOVERY_NAME.search(cls.name)
        ]

    def _check_scope(
        self, module: ModuleModel, symbol: str, root: ast.AST
    ) -> Iterator[Finding]:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            origin = module.call_origin(node)
            if origin is None:
                continue
            if origin in _CLOCK_ORIGINS:
                yield self.finding(
                    module, node, symbol,
                    f"wall-clock read {origin}() in fault/recovery code — "
                    "a quarantine or resync decision that depends on host "
                    "timing cannot be replayed from the FaultPlan seed",
                    origin=origin,
                )
            elif origin == "random.Random":
                yield self.finding(
                    module, node, symbol,
                    "random.Random in fault/recovery code — even seeded, "
                    "its draws depend on call order, which differs between "
                    "serial and --jobs runs; use the FaultPlan's "
                    "per-index splitmix64 hash instead",
                    origin=origin,
                )
            elif origin.startswith("random."):
                yield self.finding(
                    module, node, symbol,
                    f"{origin}() draws from the process-wide RNG — fault "
                    "decisions must be pure functions of (seed, tag, "
                    "index) via the injected FaultPlan",
                    origin=origin,
                )
