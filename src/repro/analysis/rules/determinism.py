"""SCR001 — nondeterminism in the replicated contract methods.

Principle #1 (§3.4): replication is correct only because every core computes
the *same* transition for the same ``(value, metadata)``.  A transition (or
``extract_metadata``/``key``, or any helper they call through ``self``) that
reads a clock, draws from an RNG, or consults hidden mutable module state
computes different results on different cores — replicas silently diverge,
and no tier-1 test catches it.  Timestamps must come from the metadata the
sequencer stamped, "never from a local clock" (§3.4); randomness must be a
deterministic function of the packet (see ``TelemetrySampler``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ...programs.base import SCR_DETERMINISTIC_METHODS
from ..findings import Finding
from ..model import MethodModel, ModuleModel
from . import Rule, register

__all__ = ["NondeterminismRule", "BANNED_MODULE_ROOTS"]

#: importable sources of nondeterminism: any call resolving into these
#: modules is banned inside the deterministic contract methods.
BANNED_MODULE_ROOTS = frozenset({"time", "datetime", "random", "uuid", "secrets"})

#: precise non-module origins that are banned wherever they resolve from.
BANNED_ORIGINS = frozenset({"os.urandom", "os.getrandom"})


def origin_is_banned(origin: str) -> bool:
    root = origin.split(".", 1)[0]
    return root in BANNED_MODULE_ROOTS or origin in BANNED_ORIGINS


@register
class NondeterminismRule(Rule):
    id = "SCR001"
    title = ("transition/extract_metadata/key must be deterministic: "
             "no clocks, RNGs, or mutable module globals")
    paper_ref = "Principle #1, §3.4"

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        mutable_globals = module.mutable_globals()
        # Dedup by function node: a helper inherited in-module would appear
        # in several programs' closures but is one piece of code.
        seen: Set[int] = set()
        for program in module.program_classes():
            for method in module.method_closure(
                program, SCR_DETERMINISTIC_METHODS
            ):
                if id(method.node) in seen:
                    continue
                seen.add(id(method.node))
                yield from self._check_method(module, program.name, method,
                                              mutable_globals)

    def _check_method(
        self,
        module: ModuleModel,
        class_name: str,
        method: MethodModel,
        mutable_globals: Set[str],
    ) -> Iterator[Finding]:
        symbol = f"{class_name}.{method.name}"
        for node in ast.walk(method.node):
            if isinstance(node, ast.Call):
                origin = module.call_origin(node)
                if origin is not None and origin_is_banned(origin):
                    yield self.finding(
                        module, node, symbol,
                        f"call to nondeterministic {origin}() — replicas "
                        "would diverge (timestamps/randomness must come "
                        "from the packet metadata, §3.4)",
                        origin=origin,
                    )
            elif isinstance(node, ast.Name) and node.id in mutable_globals:
                yield self.finding(
                    module, node, symbol,
                    f"reads module-level mutable global {node.id!r} — "
                    "hidden state outside (value, metadata) breaks "
                    "replica determinism (Principle #1)",
                    name=node.id,
                )
