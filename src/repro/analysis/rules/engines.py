"""SCR004 — hidden clocks and hidden per-core state in the engines.

The performance engines under ``repro.parallel`` simulate deterministic
hardware: every run with the same seed must produce the same schedule, or
the perf-regression gate (``scr-repro bench --compare``) turns into noise.
Two ways an engine silently breaks that:

* **wall clocks** — branching on ``time.time()`` (or friends) makes service
  times depend on the host, not the model;
* **hidden mutable state** — a module-level (or class-body) list/dict is
  shared across every engine instance and survives ``reset()``, so one
  run's state leaks into the next.  Per-core accounting belongs in
  ``CoreCounters``; per-run state belongs on the instance and must be
  rebuilt by ``reset()``.

Seeded RNGs are the sanctioned §3.4 pattern (``random.Random(seed)``);
what this rule flags is the *module-global* RNG (``random.random()``) and
unseeded constructions (``random.Random()``), both of which draw from
process-wide state.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from ..findings import Finding
from ..model import ModuleModel
from . import Rule, register

__all__ = ["EngineStateRule"]

_CLOCK_ORIGINS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

def _is_engine_module(module: ModuleModel) -> bool:
    """The rule applies to ``repro/parallel``, ``repro/scenario``,
    ``repro/obs``, and ``repro/hostprof`` files (the executor's
    parallel-equals-serial guarantee — and span sampling's
    process-independence — need the same hygiene; hostprof's sanctioned
    clock reads carry explicit suppressions) and to any module that
    defines an engine class (so fixtures exercise it from anywhere)."""
    parts = PurePath(module.path).parts
    if {"parallel", "scenario", "obs", "hostprof"} & set(parts):
        return True
    return bool(module.engine_classes())


@register
class EngineStateRule(Rule):
    id = "SCR004"
    title = ("engines must not read wall clocks or keep mutable state "
             "outside instances/CoreCounters")
    paper_ref = "§3.4; determinism of the Table 4 cost model"

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        if not _is_engine_module(module):
            return
        yield from self._check_clocks_and_rngs(module)
        yield from self._check_hidden_state(module)

    def _check_clocks_and_rngs(self, module: ModuleModel) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = module.call_origin(node)
            if origin is None:
                continue
            if origin in _CLOCK_ORIGINS:
                yield self.finding(
                    module, node, "",
                    f"wall-clock read {origin}() — engine behavior must be "
                    "a function of the model and the seed, never the host "
                    "clock (§3.4)",
                    origin=origin,
                )
            elif origin == "random.Random" and not (node.args or node.keywords):
                yield self.finding(
                    module, node, "",
                    "unseeded random.Random() — seeds must be explicit so "
                    "runs replay bit-identically (§3.4)",
                    origin=origin,
                )
            elif origin.startswith("random.") and origin != "random.Random":
                yield self.finding(
                    module, node, "",
                    f"{origin}() draws from the process-wide RNG — use a "
                    "seeded random.Random instance held by the engine "
                    "(§3.4)",
                    origin=origin,
                )

    def _check_hidden_state(self, module: ModuleModel) -> Iterator[Finding]:
        for name, value in sorted(module.mutable_globals().items()):
            yield self.finding(
                module, value, name,
                f"module-level mutable global {name!r} — shared across "
                "every engine instance and never cleared by reset(); "
                "per-run state belongs on the instance",
                name=name,
            )
        for cls in module.engine_classes():
            for name, value in sorted(cls.assigns.items()):
                if module.is_mutable_binding(value):
                    yield self.finding(
                        module, value, f"{cls.name}.{name}",
                        f"class-body mutable attribute {name!r} is shared "
                        "by every instance of the engine — move it into "
                        "__init__/reset()",
                        name=name,
                    )
