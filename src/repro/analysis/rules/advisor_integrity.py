"""SCR007 — advisor integrity: declared commutativity must be provable.

Relaxed SCR (:class:`repro.parallel.RelaxedScrEngine`) prunes the wire
history to one merged delta whenever a program declares
``SCR_COMMUTATIVE_FIELDS``.  That pruning is only sound if every declared
field really is updated commutatively — replicas converge under any
interleaving — so the declaration is a *load-bearing* safety claim, not
documentation.  This rule cross-checks it against the pure-AST dataflow
classification (:mod:`repro.analysis.dataflow`), which is sound for
commutativity: anything it cannot prove order-independent it reports as
``rmw``.

Flagged per declared field:

* the dataflow classifier finds the field **non-commutative** (overwrite,
  read-modify-write, delete) — the relaxed engine would merge histories
  it must not merge;
* the field is **never written** by the transition closure — a stale or
  misspelled name that silently weakens the declaration's meaning;
* the declaration itself is not a literal tuple/list of string field
  names — the engine reads it at construction time, so it must be a
  static literal the analyzer (and reviewers) can see.
"""

from __future__ import annotations

from typing import Iterator

from ..dataflow import analyze_program
from ..findings import Finding
from ..model import ModuleModel
from . import Rule, register

__all__ = ["AdvisorIntegrityRule"]

_DECL = "SCR_COMMUTATIVE_FIELDS"


@register
class AdvisorIntegrityRule(Rule):
    id = "SCR007"
    title = (f"{_DECL} must match the derived dataflow classification — "
             "an unsound declaration makes relaxed SCR merge histories "
             "it must not merge")
    paper_ref = "§3.2 (state-compute replication contract); docs/ADVISOR.md"

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        for program in module.program_classes():
            if program.name == "PacketProgram":
                continue
            declared_node = program.assigns.get(_DECL)
            if declared_node is None:
                continue  # no claim, nothing to cross-check
            symbol = f"{program.name}.{_DECL}"
            facts = analyze_program(module, program)
            if facts.declared_commutative is None:
                yield self.finding(
                    module, declared_node, symbol,
                    f"{_DECL} must be a literal tuple/list of field-name "
                    "strings — the relaxed engine and this cross-check "
                    "both read it statically",
                )
                continue
            for name in facts.declared_commutative:
                field = facts.field(name)
                if field is None:
                    yield self.finding(
                        module, declared_node, symbol,
                        f"field {name!r} is declared commutative but the "
                        "transition closure never writes it — remove the "
                        "stale (or misspelled) name",
                        field=name,
                    )
                elif not field.commutative:
                    kinds = ", ".join(field.kinds)
                    yield self.finding(
                        module, declared_node, symbol,
                        f"field {name!r} is declared commutative but "
                        f"classifies as [{kinds}] — relaxed SCR's merged-"
                        "delta history would be unsound; drop the "
                        "declaration or make the update an order-"
                        "independent accumulate",
                        field=name,
                        kinds=kinds,
                    )
