"""SCR005 — floating-point hazard in state transitions.

Replica convergence is *bitwise*: the functional engine asserts replicas
byte-equal after every run.  Float arithmetic endangers that in two ways —
accumulation order (a core fast-forwarding k-1 history items may reassociate
a sum the reference computed incrementally; float addition is not
associative), and platform-divergent rounding in libm calls.  The zoo's own
pattern is the fix: ``TokenBucketPolicer`` keeps milli-token *integer*
arithmetic precisely "to keep replicas bit-identical".

Flagged inside ``transition`` (and its ``self.*`` helper closure): float
literals used in arithmetic, true division ``/``, ``float(...)``
conversions, and ``math.*`` calls that return floats.  Deliberate,
argued-safe float use can carry ``# scrlint: disable=SCR005`` with a
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ...programs.base import SCR_PURE_METHODS
from ..findings import Finding
from ..model import MethodModel, ModuleModel
from . import Rule, register

__all__ = ["FloatHazardRule"]

#: math functions that stay in integers and are replica-safe.
_INTEGER_MATH = frozenset({
    "math.floor", "math.ceil", "math.gcd", "math.lcm", "math.isqrt",
    "math.comb", "math.perm", "math.factorial", "math.trunc",
})


@register
class FloatHazardRule(Rule):
    id = "SCR005"
    title = ("float arithmetic in a transition risks cross-core "
             "reassociation — keep state integral")
    paper_ref = "§3.4 (bit-identical replicas); cf. TokenBucketPolicer"

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        seen: Set[int] = set()
        for program in module.program_classes():
            # apply() overrides are transitions in all but name.
            start = tuple(SCR_PURE_METHODS) + ("apply",)
            for method in module.method_closure(program, start):
                if id(method.node) in seen or method.name == "fast_forward":
                    continue
                seen.add(id(method.node))
                yield from self._check_method(module, program.name, method)

    def _check_method(
        self, module: ModuleModel, class_name: str, method: MethodModel
    ) -> Iterator[Finding]:
        symbol = f"{class_name}.{method.name}"
        for node in ast.walk(method.node):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield self.finding(
                    module, node, symbol,
                    "true division (/) produces floats — use // (or "
                    "rational integer math like TokenBucketPolicer's "
                    "milli-tokens) so replicas stay bit-identical (§3.4)",
                )
            elif isinstance(node, ast.Call):
                origin = module.call_origin(node)
                func = node.func
                if isinstance(func, ast.Name) and func.id == "float":
                    yield self.finding(
                        module, node, symbol,
                        "float() conversion in a transition — state values "
                        "must stay integral for bitwise replica equality",
                    )
                elif (origin is not None and origin.startswith("math.")
                      and origin not in _INTEGER_MATH):
                    yield self.finding(
                        module, node, symbol,
                        f"{origin}() returns platform-rounded floats — "
                        "replicas may diverge in the last ulp (§3.4)",
                        origin=origin,
                    )
            elif (isinstance(node, ast.Constant)
                  and isinstance(node.value, float)):
                yield self.finding(
                    module, node, symbol,
                    f"float literal {node.value!r} in a transition — "
                    "scale to integers (milli-units) instead (§3.4)",
                )
