"""SCR003 — metadata completeness and layout consistency.

App. C: ``extract_metadata`` must capture *every* packet bit the transition
depends on, control dependencies included — a name the transition reads but
the metadata class never declares means replicas fast-forwarding from
history rows reconstruct a different input than the core that saw the real
packet.  The packed layout is also load-bearing: the sequencer stores and
piggybacks exactly ``size()`` bytes (Table 1's "metadata size"), so
``FORMAT`` and ``FIELDS`` must agree in arity and round-trip width.

Three checks per module:

* every metadata class's ``FORMAT`` unpacks into exactly ``len(FIELDS)``
  values (struct round-trip arity), and uses an explicit byte order so the
  layout is identical across hosts;
* every read of the ``meta`` parameter inside the contract methods (and
  helpers taking a ``meta`` parameter) names a declared field;
* every keyword passed to the metadata constructor in ``extract_metadata``
  is a declared field (a typo'd kwarg silently packs as zero).

Programs whose ``metadata_cls`` is not statically resolvable (dynamic
layouts like ``ProgramChain``) are exempt from the per-field checks.
"""

from __future__ import annotations

import ast
import struct
from typing import Iterator, Set

from ...programs.base import SCR_META_READER_METHODS
from ..findings import Finding
from ..model import ClassModel, MethodModel, ModuleModel
from . import Rule, register

__all__ = ["MetadataRule"]

#: PacketMetadata API reads that are always legitimate on ``meta``.
_METADATA_API = frozenset({
    "pack", "unpack", "size", "astuple", "FIELDS", "FORMAT", "stages",
})


@register
class MetadataRule(Rule):
    id = "SCR003"
    title = ("metadata must declare every field the transition reads, and "
             "FORMAT/FIELDS must agree with the packed size")
    paper_ref = "App. C; §3.2; Table 1"

    def check(self, module: ModuleModel) -> Iterator[Finding]:
        for metadata in module.metadata_classes():
            yield from self._check_layout(module, metadata)
        seen: Set[int] = set()
        for program in module.program_classes():
            metadata = module.metadata_for(program)
            if metadata is None:
                continue
            _, fields = module.metadata_layout(metadata)
            if fields is None:
                continue
            allowed = set(fields) | _METADATA_API
            for method in self._meta_methods(module, program):
                if id(method.node) in seen:
                    continue
                seen.add(id(method.node))
                yield from self._check_reads(
                    module, program, metadata, method, allowed
                )
            ctor = program.methods.get("extract_metadata")
            if ctor is not None:
                yield from self._check_ctor_kwargs(
                    module, program, metadata, ctor, set(fields)
                )

    # -- layout -------------------------------------------------------------

    def _check_layout(
        self, module: ModuleModel, metadata: ClassModel
    ) -> Iterator[Finding]:
        fmt, fields = module.metadata_layout(metadata)
        if fmt is None or fields is None:
            return
        symbol = metadata.name
        node = metadata.node
        if fmt[:1] not in ("!", ">", "<", "="):
            yield self.finding(
                module, node, symbol,
                f"FORMAT {fmt!r} has no explicit byte order — native "
                "alignment differs across hosts; the sequencer's history "
                "bytes must be layout-identical everywhere (use '!')",
            )
            return
        try:
            width = struct.calcsize(fmt)
            arity = len(struct.unpack(fmt, bytes(width)))
        except struct.error as exc:
            yield self.finding(
                module, node, symbol,
                f"FORMAT {fmt!r} is not a valid struct format: {exc}",
            )
            return
        if arity != len(fields):
            yield self.finding(
                module, node, symbol,
                f"FORMAT {fmt!r} packs {arity} value(s) but FIELDS "
                f"declares {len(fields)} — pack()/unpack() cannot "
                "round-trip the history row (Table 1 metadata size)",
                format=fmt,
                fields=",".join(fields),
            )

    # -- field reads --------------------------------------------------------

    def _meta_methods(
        self, module: ModuleModel, program: ClassModel
    ) -> Iterator[MethodModel]:
        """Contract methods plus any same-class helper with a ``meta`` arg."""
        for method in module.method_closure(program, SCR_META_READER_METHODS):
            if "meta" in method.arg_names:
                yield method
        for name, method in sorted(program.methods.items()):
            if name not in SCR_META_READER_METHODS and "meta" in method.arg_names:
                yield method

    def _check_reads(
        self,
        module: ModuleModel,
        program: ClassModel,
        metadata: ClassModel,
        method: MethodModel,
        allowed: Set[str],
    ) -> Iterator[Finding]:
        symbol = f"{program.name}.{method.name}"
        seen_nodes: Set[int] = set()
        for node in ast.walk(method.node):
            if id(node) in seen_nodes:
                continue
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "meta"
                and not node.attr.startswith("__")
                and node.attr not in allowed
            ):
                seen_nodes.add(id(node))
                yield self.finding(
                    module, node, symbol,
                    f"reads meta.{node.attr} but {metadata.name} declares "
                    f"no such field — the transition depends on a packet "
                    "bit the sequencer never captured (App. C)",
                    field=node.attr,
                    metadata=metadata.name,
                )

    def _check_ctor_kwargs(
        self,
        module: ModuleModel,
        program: ClassModel,
        metadata: ClassModel,
        method: MethodModel,
        fields: Set[str],
    ) -> Iterator[Finding]:
        symbol = f"{program.name}.{method.name}"
        for node in ast.walk(method.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == metadata.name):
                continue
            for kw in node.keywords:
                if kw.arg is not None and kw.arg not in fields:
                    yield self.finding(
                        module, kw.value, symbol,
                        f"passes {kw.arg}= to {metadata.name} but FIELDS "
                        "does not declare it — the value is dropped and "
                        "packs as zero on every replica (App. C)",
                        field=kw.arg,
                        metadata=metadata.name,
                    )
