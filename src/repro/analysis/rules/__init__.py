"""The scrlint rule registry.

Rules are small classes with an ``id``, a one-line ``title``, a paper
citation, and a ``check(module)`` generator over findings.  Registering is
one decorator::

    from repro.analysis.rules import Rule, register

    @register
    class MyRule(Rule):
        id = "SCR900"
        title = "local policy"
        paper_ref = "internal"

        def check(self, module):
            yield from ()

Registration is what the CLI and :func:`repro.analysis.lint_paths` pick up;
``docs/ANALYSIS.md`` documents the extension point.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Type

from ..findings import Finding
from ..model import ModuleModel

__all__ = ["Rule", "register", "all_rules", "get_rule", "rule_ids"]

_REGISTRY: Dict[str, "Rule"] = {}


class Rule(ABC):
    """One SCR-safety property, checked module by module."""

    #: unique id, ``SCRnnn``; ordering in reports follows location, not id.
    id: str = "SCR000"
    #: one-line summary shown by ``scr-repro lint --list-rules``.
    title: str = ""
    #: the paper section/appendix the property comes from.
    paper_ref: str = ""

    @abstractmethod
    def check(self, module: ModuleModel) -> Iterator[Finding]:
        """Yield findings for one parsed module."""

    def finding(
        self,
        module: ModuleModel,
        node: ast.AST,
        symbol: str,
        message: str,
        **detail: str,
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            symbol=symbol,
            message=message,
            detail=dict(detail),
        )


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    instance = rule_cls()
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    _REGISTRY[instance.id] = instance
    return rule_cls


def all_rules() -> List[Rule]:
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    return sorted(_REGISTRY)


def _suggest(key: str) -> List[str]:
    """Near-miss candidates for an unknown rule id (``scr7`` → SCR007)."""
    import difflib
    import re

    match = re.fullmatch(r"(?:SCR)?0*([0-9]+)", key)
    if match:
        padded = f"SCR{int(match.group(1)):03d}"
        if padded in _REGISTRY:
            return [padded]
    return difflib.get_close_matches(key, sorted(_REGISTRY), n=3, cutoff=0.6)


def get_rule(rule_id: str) -> Rule:
    key = rule_id.strip().upper()
    hit = _REGISTRY.get(key)
    if hit is not None:
        return hit
    suggestions = _suggest(key)
    hint = f" (did you mean {', '.join(suggestions)}?)" if suggestions else ""
    raise KeyError(
        f"unknown rule {rule_id!r}{hint}; "
        f"registered: {', '.join(sorted(_REGISTRY))}"
    )


# Importing the rule modules is what populates the registry.
from . import determinism  # noqa: E402,F401  (registration side effect)
from . import purity  # noqa: E402,F401
from . import metadata  # noqa: E402,F401
from . import engines  # noqa: E402,F401
from . import floats  # noqa: E402,F401
from . import faulthygiene  # noqa: E402,F401
from . import advisor_integrity  # noqa: E402,F401
