"""Parallelization-technique advisor (``scr-repro/advice/v1``).

Given the static state-access facts of a program (:mod:`.dataflow`), its
measured per-packet cost parameters (Table 4's ``d``/``c1``/``c2``/``t``,
or a fresh profile), and a workload profile, score the candidate scaling
techniques against the paper's Appendix A cost model and predict the
MLFFR curve each would achieve at k = 1..K cores:

* **scr** — ``k / (t + (k-1)·c2)``: history fast-forward grows with k;
* **relaxed_scr** — ``k / (t + min(k-1, 1)·c2)`` when every written state
  field is commutative (the sequencer folds the history into one merged
  delta); degenerates to plain SCR otherwise;
* **rss** — shared-nothing sharding: ``1 / (s_k · (d + c1))`` where
  ``s_k`` is the busiest core's traffic share under the program's RSS key
  at k cores (perfect balance gives ``k / (d + c1)``; one elephant flow
  pins it at one core's rate).  Ineligible when the program keeps global
  or multi-entry state that sharding cannot place (§2.2);
* **shared** — one state map for all cores, atomics or per-entry locks by
  the program's Table 1 row: min of the per-core rate (each access pays
  the cache-line bounce) and the hottest entry's serialization rate;
* **hybrid** — elephant/mice placement (:mod:`repro.placement`): the hot
  flows ride SCR (replicated, sprayed), everyone else stays RSS-sharded.
  Per-core load is ``e/k·(t + (k-1)·c2) + (1-e)·s_mice·t`` plus the
  per-packet classifier probe; eligible only when the program is
  shardable *and* the workload carries enough concurrent flows for
  placement to pay for the classifier.

The advisor is *pure*: it sees measurements only through its arguments,
so the same inputs always produce the same advice.  Measurement-backed
validation lives in the perf layer (``repro.perf.advise`` and the
``advisor_validation`` suite), which checks these predictions against the
simulated engines for every registered program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cpu.costmodel import DEFAULT_CONTENTION, ContentionParams, CostParams
from .dataflow import ProgramFacts

__all__ = [
    "ADVICE_SCHEMA",
    "ADVISOR_TECHNIQUES",
    "HYBRID_MIN_FLOWS",
    "WorkloadProfile",
    "TechniqueScore",
    "Advice",
    "advise_program",
    "eligible_techniques",
]

ADVICE_SCHEMA = "scr-repro/advice/v1"

#: The techniques the advisor ranks, in presentation order.
ADVISOR_TECHNIQUES = ("scr", "relaxed_scr", "rss", "shared", "hybrid")

#: Concurrent flows below which elephant/mice placement cannot pay for
#: its classifier: with few flows a purebred technique already places
#: them all, so the hybrid is scored ineligible rather than recommended
#: off sketch noise.
HYBRID_MIN_FLOWS = 1024

_NS_TO_MPPS = 1e3  # 1 packet/ns == 1000 Mpps


@dataclass(frozen=True)
class WorkloadProfile:
    """What the advisor needs to know about the offered traffic.

    The defaults describe the paper's headline adversarial workload — a
    single elephant flow (Figure 1): the hottest key receives everything
    and RSS cannot spread it at all.
    """

    #: fraction of packets hitting the hottest state key.
    hot_key_share: float = 1.0
    #: fraction of packets updating program-global state (NAT pool).
    global_fraction: float = 0.0
    #: k -> busiest core's traffic share when RSS hashes the program's key
    #: fields; missing entries fall back to the single-elephant worst case.
    rss_core_shares: Mapping[int, float] = field(default_factory=dict)
    #: distinct state keys seen concurrently (the hybrid technique's
    #: eligibility gate); the single-elephant default is 1.
    flow_count: int = 1

    def rss_share(self, k: int) -> float:
        if k <= 1:
            return 1.0
        share = self.rss_core_shares.get(k)
        if share is None:
            share = self.hot_key_share  # the elephant pins one core
        # The busiest core can never hold less than a perfect 1/k split.
        return min(1.0, max(share, 1.0 / k))


@dataclass(frozen=True)
class TechniqueScore:
    """One technique's predicted MLFFR curve."""

    technique: str
    eligible: bool
    #: Mpps at each evaluated core count, in `cores` order; empty when
    #: ineligible.
    mlffr_mpps: Tuple[float, ...]
    cores: Tuple[int, ...]
    reason: str

    @property
    def best(self) -> Tuple[int, float]:
        """(k, Mpps) of the curve's peak; (0, 0.0) when ineligible."""
        if not self.mlffr_mpps:
            return (0, 0.0)
        i = max(range(len(self.mlffr_mpps)), key=lambda j: self.mlffr_mpps[j])
        return (self.cores[i], self.mlffr_mpps[i])

    def at(self, k: int) -> float:
        try:
            return self.mlffr_mpps[self.cores.index(k)]
        except ValueError:
            return 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "technique": self.technique,
            "eligible": self.eligible,
            "cores": list(self.cores),
            "mlffr_mpps": [round(v, 4) for v in self.mlffr_mpps],
            "reason": self.reason,
        }


@dataclass(frozen=True)
class Advice:
    """The advisor's verdict for one program."""

    program: str
    facts: ProgramFacts
    scores: Tuple[TechniqueScore, ...]
    #: technique with the highest predicted MLFFR at the largest k.
    recommended: str
    decision_cores: int

    def score(self, technique: str) -> Optional[TechniqueScore]:
        for s in self.scores:
            if s.technique == technique:
                return s
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": ADVICE_SCHEMA,
            "program": self.program,
            "recommended": self.recommended,
            "decision_cores": self.decision_cores,
            "facts": self.facts.to_dict(),
            "scores": [s.to_dict() for s in self.scores],
        }


def eligible_techniques(facts: ProgramFacts) -> Tuple[str, ...]:
    """Which of the advisor's techniques can run this program at all."""
    out = ["scr", "relaxed_scr", "shared"]
    if not (facts.has_global_state or facts.multi_key):
        out.append("rss")
    return tuple(t for t in ADVISOR_TECHNIQUES if t in out)


# -- per-technique analytic curves --------------------------------------------


def _scr_curve(costs: CostParams, cores: Sequence[int]) -> List[float]:
    return [k * _NS_TO_MPPS / (costs.t + (k - 1) * costs.c2) for k in cores]


def _relaxed_curve(
    facts: ProgramFacts, costs: CostParams, cores: Sequence[int]
) -> Tuple[List[float], str]:
    if facts.all_commutative:
        curve = [
            k * _NS_TO_MPPS / (costs.t + min(k - 1, 1) * costs.c2)
            for k in cores
        ]
        return curve, (
            "all written fields commutative "
            f"({', '.join(f.field for f in facts.fields)}): history folds "
            "into one merged delta, per-core cost stops growing with k"
        )
    return _scr_curve(costs, cores), (
        "non-commutative state: merged-delta pruning unsound, "
        "degenerates to plain SCR"
    )


def _rss_curve(
    costs: CostParams, workload: WorkloadProfile, cores: Sequence[int]
) -> List[float]:
    per_pkt = costs.d + costs.c1
    return [_NS_TO_MPPS / (workload.rss_share(k) * per_pkt) for k in cores]


def _shared_curve(
    facts: ProgramFacts,
    costs: CostParams,
    workload: WorkloadProfile,
    contention: ContentionParams,
    cores: Sequence[int],
) -> Tuple[List[float], str]:
    curve: List[float] = []
    transfer = contention.line_transfer_ns
    for k in cores:
        if k == 1:
            if facts.needs_locks:
                service = costs.d + contention.lock_hold_ns(costs.c1, 1)
            else:
                service = costs.d + costs.c1 + contention.atomic_ns
            bounds = [_NS_TO_MPPS / service]
        elif facts.needs_locks:
            # Round-robin spray bounces the entry line on essentially every
            # hot-key access; the hold inflates with the spinning cores.
            hold = contention.lock_hold_ns(costs.c1, k)
            bounds = [k * _NS_TO_MPPS / (costs.d + hold)]
            if workload.hot_key_share > 0:
                bounds.append(_NS_TO_MPPS / (workload.hot_key_share * hold))
        else:
            # Atomics: the load misses (dirty elsewhere) and the RMW then
            # owns the line for a full cross-core transfer.
            stall = transfer + contention.atomic_hold_ns()
            bounds = [k * _NS_TO_MPPS / (costs.d + costs.c1 + stall)]
            if workload.hot_key_share > 0:
                bounds.append(_NS_TO_MPPS / (
                    workload.hot_key_share * contention.atomic_hold_ns()
                ))
        if facts.has_global_state and workload.global_fraction > 0 and k > 1:
            hold_g = contention.lock_hold_ns(costs.c1 * 0.5, k)
            bounds.append(
                _NS_TO_MPPS / (workload.global_fraction * hold_g)
            )
        curve.append(min(bounds))
    flavor = "per-entry spinlocks" if facts.needs_locks else "hardware atomics"
    return curve, (
        f"{flavor}: min of the per-core rate (every access bounces the "
        "entry line) and the hottest entry's serialization rate"
    )


def _hybrid_curve(
    costs: CostParams,
    workload: WorkloadProfile,
    contention: ContentionParams,
    cores: Sequence[int],
) -> Tuple[List[float], str]:
    """Elephant/mice placement: the hot share ``e`` is sprayed SCR-style
    over all cores, the mice stay sharded; every packet pays one sketch
    probe.  Degenerates toward plain SCR at e→1 and toward RSS at e→0."""
    e = min(1.0, max(0.0, workload.hot_key_share))
    probe = contention.atomic_ns
    mice_cost = costs.t + probe
    curve: List[float] = []
    for k in cores:
        if e >= 1.0:
            mice_share = 0.0
        else:
            # Busiest mice core once the elephant traffic is carved out of
            # the RSS load; never better than a perfect 1/k split.
            mice_share = min(
                1.0, max(1.0 / k, (workload.rss_share(k) - e) / (1.0 - e))
            )
        per_core = (
            e / k * (costs.t + (k - 1) * costs.c2 + probe)
            + (1.0 - e) * mice_share * mice_cost
        )
        curve.append(_NS_TO_MPPS / per_core)
    return curve, (
        f"elephants ({e:.0%} of traffic) replicated via SCR, mice stay "
        "sharded; every packet pays one classifier probe"
    )


def advise_program(
    facts: ProgramFacts,
    costs: CostParams,
    workload: Optional[WorkloadProfile] = None,
    cores: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    contention: ContentionParams = DEFAULT_CONTENTION,
) -> Advice:
    """Score every technique for one program and pick a winner.

    The winner is the eligible technique with the highest predicted MLFFR
    at the largest evaluated core count (scaling is the whole point);
    ineligible techniques are reported with empty curves and a reason.
    """
    if not cores:
        raise ValueError("need at least one core count")
    workload = workload or WorkloadProfile()
    cores = tuple(sorted(set(int(k) for k in cores)))
    if cores[0] < 1:
        raise ValueError("core counts must be >= 1")
    eligible = set(eligible_techniques(facts))
    scores: List[TechniqueScore] = []

    for technique in ADVISOR_TECHNIQUES:
        if technique == "hybrid":
            # Placement eligibility is workload-dependent, unlike the
            # purely structural gates below.
            if "rss" not in eligible:
                reason = (
                    "mice sharding needs flow-placeable state; global/"
                    "multi-entry state rules out the RSS half (§2.2)"
                )
            elif workload.flow_count < HYBRID_MIN_FLOWS:
                reason = (
                    f"only {workload.flow_count} concurrent flows "
                    f"(placement pays off from {HYBRID_MIN_FLOWS}); "
                    "a purebred technique already places them all"
                )
            else:
                curve, why = _hybrid_curve(costs, workload, contention, cores)
                scores.append(
                    TechniqueScore(
                        technique=technique,
                        eligible=True,
                        mlffr_mpps=tuple(curve),
                        cores=cores,
                        reason=why,
                    )
                )
                continue
            scores.append(
                TechniqueScore(
                    technique=technique,
                    eligible=False,
                    mlffr_mpps=(),
                    cores=cores,
                    reason=reason,
                )
            )
            continue
        if technique not in eligible:
            scores.append(
                TechniqueScore(
                    technique=technique,
                    eligible=False,
                    mlffr_mpps=(),
                    cores=cores,
                    reason=(
                        "global/multi-entry state cannot be placed by "
                        "flow sharding (§2.2)"
                    ),
                )
            )
            continue
        if technique == "scr":
            curve = _scr_curve(costs, cores)
            reason = "Appendix A: t + (k-1)*c2 history fast-forward per packet"
        elif technique == "relaxed_scr":
            curve, reason = _relaxed_curve(facts, costs, cores)
        elif technique == "rss":
            curve = _rss_curve(costs, workload, cores)
            share = workload.rss_share(cores[-1])
            reason = (
                f"shared-nothing: gated by the busiest core "
                f"({share:.0%} of traffic at k={cores[-1]})"
            )
        else:
            curve, reason = _shared_curve(
                facts, costs, workload, contention, cores
            )
        scores.append(
            TechniqueScore(
                technique=technique,
                eligible=True,
                mlffr_mpps=tuple(curve),
                cores=cores,
                reason=reason,
            )
        )

    decision_k = cores[-1]
    recommended = max(
        (s for s in scores if s.eligible),
        key=lambda s: s.at(decision_k),
    ).technique
    return Advice(
        program=facts.program_name or facts.class_name,
        facts=facts,
        scores=tuple(scores),
        recommended=recommended,
        decision_cores=decision_k,
    )
