"""scrlint — SCR-safety static analysis for packet programs and engines.

The runtime can only catch replication bugs by accident (a lucky trace that
happens to diverge); the contract itself — transitions that are pure,
deterministic functions of ``(value, metadata)``, metadata that captures
every packet bit the transition reads — is statically checkable, the same
way the eBPF verifier admission-checks programs before they touch traffic.
This package is that admission gate for the growing program zoo:

* ``SCR001`` nondeterminism (clocks/RNGs/mutable globals) — §3.4
* ``SCR002`` transition purity (no self-mutation, I/O, StateMap) — §3.2
* ``SCR003`` metadata completeness + FORMAT/FIELDS layout — App. C
* ``SCR004`` hidden clock/state in the scaling engines — §3.4
* ``SCR005`` float hazard in transitions — §3.4
* ``SCR007`` advisor integrity: declared commutativity must be provable

Beyond the lint rules, the package derives per-program **state-access
dataflow facts** (:mod:`repro.analysis.dataflow`: field-level write
kinds, commutativity, key locality — all pure AST, never importing the
target) and turns them into **parallelization advice**
(:mod:`repro.analysis.advisor`: scr vs relaxed_scr vs rss vs shared,
scored against the paper's Appendix A cost model).  ``scr-repro advise``
and the ``advisor_validation`` perf suite are built on these; see
``docs/ADVISOR.md``.

Use it from pytest (``lint_paths()``/``lint_source()``), from the CLI
(``scr-repro lint [--format json|sarif] [--select/--ignore RULES]``), or
register custom rules via :mod:`repro.analysis.rules` — see
``docs/ANALYSIS.md``.
"""

from .advisor import (
    ADVICE_SCHEMA,
    ADVISOR_TECHNIQUES,
    Advice,
    TechniqueScore,
    WorkloadProfile,
    advise_program,
    eligible_techniques,
)
from .dataflow import (
    COMMUTATIVE_KINDS,
    FACTS_SCHEMA,
    FieldFacts,
    ProgramFacts,
    analyze_module,
    analyze_path,
    analyze_source,
    facts_report,
)
from .findings import Finding, findings_to_json, render_finding
from .model import ClassModel, MethodModel, ModuleModel
from .rules import Rule, all_rules, get_rule, register, rule_ids
from .runner import (
    DEFAULT_LINT_PATHS,
    LintReport,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)
from .sarif import format_sarif, report_to_sarif
from .suppressions import SuppressionIndex

__all__ = [
    "ADVICE_SCHEMA",
    "ADVISOR_TECHNIQUES",
    "Advice",
    "TechniqueScore",
    "WorkloadProfile",
    "advise_program",
    "eligible_techniques",
    "COMMUTATIVE_KINDS",
    "FACTS_SCHEMA",
    "FieldFacts",
    "ProgramFacts",
    "analyze_module",
    "analyze_path",
    "analyze_source",
    "facts_report",
    "format_sarif",
    "report_to_sarif",
    "Finding",
    "findings_to_json",
    "render_finding",
    "ClassModel",
    "MethodModel",
    "ModuleModel",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "rule_ids",
    "DEFAULT_LINT_PATHS",
    "LintReport",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_source",
    "SuppressionIndex",
]
