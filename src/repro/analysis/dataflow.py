"""Static state-access dataflow classification (``scr-repro/state-facts/v1``).

For every packet program in a module, derive — **without importing it** —
the facts the parallelization-technique advisor needs:

* which state-value fields the transition closure *writes*, and how: pure
  accumulate-add, OR-accumulate, max-accumulate, a monotone threshold over
  such an accumulator, a plain overwrite, an entry delete, or a general
  read-modify-write;
* whether each written field is **commutative** (replicas converge under
  any interleaving — the soundness condition for relaxed SCR's merged-delta
  history) and **monotonic**;
* the **key locality**: does one state entry belong to one flow
  (``flow_local``), aggregate many flows (``cross_flow``, e.g. a per-source
  counter), touch several entries per packet (``multi_key`` — the NAT's
  binding + global pool), or is the program ``stateless``;
* the piggybacked history width (the packed metadata size).

The classifier is deliberately *sound for commutativity, not complete*:
anything it cannot prove to be an order-independent accumulate is reported
as ``rmw`` (non-commutative).  A wrong ``SCR_COMMUTATIVE_FIELDS``
declaration therefore cannot slip past rule SCR007, which cross-checks the
declaration against this classification in both directions.

Analysis is an environment-based single-assignment resolution over the
transition body: locals assigned exactly once at the top level resolve to
their expression; names reassigned, or assigned under a branch, join the
classifications of all their bindings.  Helper calls through ``self.x(...)``
are opaque — one that receives the old state value is a read-modify-write,
one that does not is a plain recompute.
"""

from __future__ import annotations

import ast
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .model import ClassModel, ModuleModel

__all__ = [
    "FACTS_SCHEMA",
    "FieldFacts",
    "ProgramFacts",
    "analyze_module",
    "analyze_source",
    "analyze_path",
    "facts_report",
    "COMMUTATIVE_KINDS",
]

FACTS_SCHEMA = "scr-repro/state-facts/v1"

#: Update kinds whose merged application is order-independent.
COMMUTATIVE_KINDS = frozenset({"add", "or", "max", "threshold"})

#: Kinds that additionally never decrease the stored value.
_MONOTONIC_KINDS = COMMUTATIVE_KINDS

#: The five header fields whose full set identifies one flow.
_FLOW_FIELDS = frozenset({"src_ip", "dst_ip", "src_port", "dst_port", "proto"})


@dataclass(frozen=True)
class FieldFacts:
    """Classification of one written state-value field."""

    field: str
    #: update kinds observed across all transition paths, sorted.
    kinds: Tuple[str, ...]
    reads_old: bool

    @property
    def commutative(self) -> bool:
        written = [k for k in self.kinds if k != "identity"]
        return bool(written) and all(k in COMMUTATIVE_KINDS for k in written)

    @property
    def monotonic(self) -> bool:
        written = [k for k in self.kinds if k != "identity"]
        return bool(written) and all(k in _MONOTONIC_KINDS for k in written)

    def to_dict(self) -> Dict[str, object]:
        return {
            "field": self.field,
            "kinds": list(self.kinds),
            "reads_old": self.reads_old,
            "commutative": self.commutative,
            "monotonic": self.monotonic,
        }


@dataclass(frozen=True)
class ProgramFacts:
    """The state-access facts of one packet program."""

    class_name: str
    program_name: Optional[str]
    path: str
    line: int
    key_locality: str  # flow_local | cross_flow | multi_key | stateless | global
    key_fields: Tuple[str, ...]
    metadata_bytes: Optional[int]
    bidirectional: bool
    has_global_state: bool
    #: Table 1's "Atomic HW vs. Locks" column (class literal; default True).
    needs_locks: bool
    multi_key: bool
    fields: Tuple[FieldFacts, ...]
    #: the class's SCR_COMMUTATIVE_FIELDS literal; None when not declared.
    declared_commutative: Optional[Tuple[str, ...]]

    @property
    def all_commutative(self) -> bool:
        """Is relaxed SCR's merged-delta history sound for this program?"""
        return bool(self.fields) and all(f.commutative for f in self.fields)

    @property
    def written_fields(self) -> Tuple[str, ...]:
        return tuple(f.field for f in self.fields)

    def field(self, name: str) -> Optional[FieldFacts]:
        for f in self.fields:
            if f.field == name:
                return f
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "class": self.class_name,
            "program": self.program_name,
            "path": self.path,
            "line": self.line,
            "key_locality": self.key_locality,
            "key_fields": list(self.key_fields),
            "metadata_bytes": self.metadata_bytes,
            "bidirectional": self.bidirectional,
            "has_global_state": self.has_global_state,
            "needs_locks": self.needs_locks,
            "multi_key": self.multi_key,
            "fields": [f.to_dict() for f in self.fields],
            "all_commutative": self.all_commutative,
            "declared_commutative": (
                None if self.declared_commutative is None
                else list(self.declared_commutative)
            ),
        }


# -- expression classification ------------------------------------------------


class _Env:
    """Local-name bindings of one transition body.

    ``bindings[name]`` lists every expression assigned to ``name`` together
    with whether that assignment sits under a branch; single unconditional
    bindings resolve transparently, everything else joins.
    """

    def __init__(self, func: ast.FunctionDef) -> None:
        self.bindings: Dict[str, List[Tuple[ast.expr, bool]]] = {}
        self._collect(func.body, conditional=False)

    def _collect(self, body: Sequence[ast.stmt], conditional: bool) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                value = stmt.value
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.bindings.setdefault(target.id, []).append(
                            (value, conditional)
                        )
                    elif isinstance(target, ast.Tuple):
                        # `a, b = expr`: opaque — record the whole RHS so
                        # old-reads still propagate, kinds join to rmw.
                        for el in target.elts:
                            if isinstance(el, ast.Name):
                                self.bindings.setdefault(el.id, []).append(
                                    (value, True)
                                )
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    self.bindings.setdefault(stmt.target.id, []).append(
                        (stmt.value, conditional)
                    )
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name):
                    synthetic = ast.BinOp(
                        left=ast.Name(id=stmt.target.id, ctx=ast.Load()),
                        op=stmt.op,
                        right=stmt.value,
                    )
                    self.bindings.setdefault(stmt.target.id, []).append(
                        (synthetic, True)
                    )
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    self._collect(sub, conditional=True)
            for handler in getattr(stmt, "handlers", ()) or ():
                self._collect(handler.body, conditional=True)


class _TransitionClassifier:
    """Classify the state value(s) returned by one transition method."""

    def __init__(self, model: ModuleModel, func: ast.FunctionDef) -> None:
        self.model = model
        self.func = func
        args = func.args
        names = [a.arg for a in args.posonlyargs + args.args]
        # (self, value, meta) by contract; be positional, not name-bound.
        self.old_name = names[1] if len(names) > 1 else "value"
        self.env = _Env(func)
        #: field -> set of kinds
        self.writes: Dict[str, Set[str]] = {}
        self.reads_old_fields: Set[str] = set()
        self.any_old_read = False

    # -- old-value tracking -------------------------------------------------

    def _reads_old(self, expr: ast.expr, seen: frozenset = frozenset()) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                if node.id == self.old_name:
                    return True
                if node.id in self.env.bindings and node.id not in seen:
                    deeper = seen | {node.id}
                    if any(
                        self._reads_old(v, deeper)
                        for v, _ in self.env.bindings[node.id]
                    ):
                        return True
        return False

    def _is_default_literal(self, expr: ast.expr) -> bool:
        """A falsy default: 0, False, (), or a zero-arg constructor call."""
        if isinstance(expr, ast.Constant):
            return not expr.value
        if isinstance(expr, ast.Call) and not self._reads_old(expr):
            return not expr.args and not expr.keywords
        return False

    def _is_old_ref(self, expr: ast.expr, seen: frozenset = frozenset()) -> bool:
        """Does ``expr`` denote the (possibly defaulted) old value itself?"""
        if isinstance(expr, ast.Name):
            if expr.id == self.old_name:
                return True
            if expr.id in self.env.bindings and expr.id not in seen:
                binds = self.env.bindings[expr.id]
                if len(binds) == 1 and not binds[0][1]:
                    return self._is_old_ref(binds[0][0], seen | {expr.id})
            return False
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.Or):
            if len(expr.values) == 2 and self._is_default_literal(expr.values[1]):
                return self._is_old_ref(expr.values[0], seen)
            return False
        if isinstance(expr, ast.IfExp):
            # `value if value is not None else <default>`
            return self._is_old_ref(expr.body, seen) and not self._reads_old(
                expr.orelse
            )
        return False

    def _is_old_field_read(self, expr: ast.expr) -> Optional[str]:
        """``old.packets`` / ``value.milli_tokens`` → the field name."""
        if isinstance(expr, ast.Attribute) and self._is_old_ref(expr.value):
            return expr.attr
        return None

    # -- scalar kinds --------------------------------------------------------

    def _classify_scalar(self, expr: ast.expr, seen: frozenset = frozenset()) -> Set[str]:
        """Kinds of one scalar state expression."""
        if isinstance(expr, ast.Constant) and expr.value is None:
            return {"delete"}
        if not self._reads_old(expr, seen):
            return {"overwrite"}
        self.any_old_read = True
        if self._is_old_ref(expr, seen):
            return {"identity"}
        field = self._is_old_field_read(expr)
        if field is not None:
            self.reads_old_fields.add(field)
            return {"identity"}
        if isinstance(expr, ast.Name) and expr.id in self.env.bindings and expr.id not in seen:
            kinds: Set[str] = set()
            for value, _cond in self.env.bindings[expr.id]:
                kinds |= self._classify_scalar(value, seen | {expr.id})
            return kinds
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.BitOr)):
            kind = "add" if isinstance(expr.op, ast.Add) else "or"
            left_old = self._reads_old(expr.left, seen)
            right_old = self._reads_old(expr.right, seen)
            if left_old != right_old:
                old_side = expr.left if left_old else expr.right
                if self._accumulator_base(old_side, seen):
                    return {kind}
            return {"rmw"}
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "max"
        ):
            old_args = [a for a in expr.args if self._reads_old(a, seen)]
            if len(old_args) == 1 and self._accumulator_base(old_args[0], seen):
                return {"max"}
            return {"rmw"}
        if isinstance(expr, ast.Compare):
            # A comparison over a commutative accumulator is itself a
            # monotone threshold (heavy_hitter's is_heavy flag).
            operands = [expr.left] + list(expr.comparators)
            old_ops = [o for o in operands if self._reads_old(o, seen)]
            if len(old_ops) == 1:
                kinds = self._classify_scalar(old_ops[0], seen)
                if kinds and kinds <= COMMUTATIVE_KINDS:
                    return {"threshold"}
            return {"rmw"}
        return {"rmw"}

    def _accumulator_base(self, expr: ast.expr, seen: frozenset) -> bool:
        """Is the old-reading side of an accumulate a direct old reference
        (the whole value, one of its fields, or a chained accumulator)?"""
        if self._is_old_ref(expr, seen):
            return True
        field = self._is_old_field_read(expr)
        if field is not None:
            self.reads_old_fields.add(field)
            return True
        if isinstance(expr, ast.Name) and expr.id in self.env.bindings and expr.id not in seen:
            kinds = self._classify_scalar(expr, seen)
            return bool(kinds) and kinds <= COMMUTATIVE_KINDS
        return False

    # -- returned state values ----------------------------------------------

    def _ctor_params(self, cls: ClassModel) -> List[str]:
        """Positional field order of a value class: __new__, __init__, or
        dataclass annotations."""
        for ctor, skip in (("__new__", 1), ("__init__", 1)):
            method = cls.methods.get(ctor)
            if method is not None:
                names = method.arg_names
                return names[skip:]
        fields = []
        for item in cls.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                fields.append(item.target.id)
        return fields

    def _record(self, field: str, kinds: Set[str]) -> None:
        self.writes.setdefault(field, set()).update(kinds)

    def _classify_state_value(self, expr: ast.expr, seen: frozenset = frozenset()) -> None:
        """Record field writes for one returned state expression."""
        if self._is_old_ref(expr, seen):
            self.any_old_read = self.any_old_read or self._reads_old(expr, seen)
            return  # identity: no write
        if isinstance(expr, ast.Constant) and expr.value is None:
            self._record("value", {"delete"})
            return
        if isinstance(expr, ast.Name) and expr.id in self.env.bindings and expr.id not in seen:
            binds = self.env.bindings[expr.id]
            if len(binds) == 1 and not binds[0][1]:
                self._classify_state_value(binds[0][0], seen | {expr.id})
            else:
                for value, _cond in binds:
                    self._classify_state_value(value, seen | {expr.id})
            return
        if isinstance(expr, ast.Call):
            ctor = self._value_class_for(expr)
            if ctor is not None:
                self._classify_ctor(expr, ctor, seen)
                return
            if self._is_dataclass_replace(expr):
                self._classify_replace(expr, seen)
                return
        # Scalar value: the single field "value".
        self._record("value", self._classify_scalar(expr, seen))

    def _value_class_for(self, call: ast.Call) -> Optional[ClassModel]:
        if isinstance(call.func, ast.Name):
            return self.model.classes.get(call.func.id)
        return None

    def _is_dataclass_replace(self, call: ast.Call) -> bool:
        origin = self.model.call_origin(call)
        return origin == "dataclasses.replace"

    def _classify_ctor(
        self, call: ast.Call, cls: ClassModel, seen: frozenset
    ) -> None:
        params = self._ctor_params(cls)
        for i, arg in enumerate(call.args):
            field = params[i] if i < len(params) else f"arg{i}"
            self._record(field, self._classify_scalar(arg, seen))
        for kw in call.keywords:
            if kw.arg is not None:
                self._record(kw.arg, self._classify_scalar(kw.value, seen))

    def _classify_replace(self, call: ast.Call, seen: frozenset) -> None:
        # replace(old_entry, field=..., ...): unnamed fields carry over.
        base_ok = bool(call.args) and self._reads_old(call.args[0], seen)
        for kw in call.keywords:
            if kw.arg is None:
                continue
            kinds = self._classify_scalar(kw.value, seen)
            if not base_ok:
                kinds = {"rmw"}
            self._record(kw.arg, kinds)

    def run(self) -> None:
        for node in ast.walk(self.func):
            if isinstance(node, ast.Return) and node.value is not None:
                value = node.value
                if isinstance(value, ast.Tuple) and len(value.elts) == 2:
                    self._classify_state_value(value.elts[0])


# -- program-level analysis ---------------------------------------------------


def _class_bool(cls: ClassModel, name: str) -> bool:
    value = cls.assigns.get(name)
    return isinstance(value, ast.Constant) and value.value is True


def _class_str(cls: ClassModel, name: str) -> Optional[str]:
    value = cls.assigns.get(name)
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value
    return None


def _declared_commutative(cls: ClassModel) -> Optional[Tuple[str, ...]]:
    value = cls.assigns.get("SCR_COMMUTATIVE_FIELDS")
    if not isinstance(value, (ast.Tuple, ast.List)):
        return None
    fields = []
    for el in value.elts:
        if isinstance(el, ast.Constant) and isinstance(el.value, str):
            fields.append(el.value)
        else:
            return None
    return tuple(fields)


def _meta_fields_read(model: ModuleModel, program: ClassModel, method: str) -> Set[str]:
    """Attributes of the ``meta`` parameter read in a method's closure."""
    read: Set[str] = set()
    for m in model.method_closure(program, [method]):
        args = m.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if len(names) < 2:
            continue
        meta_name = names[-1]  # (self, meta) / (self, value, meta)
        for node in ast.walk(m.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == meta_name
            ):
                read.add(node.attr)
    return read


def _concrete_transition(
    model: ModuleModel, program: ClassModel
) -> Optional[ast.FunctionDef]:
    """The program's transition, when it has a tuple-returning body."""
    method = program.methods.get("transition")
    if method is None:
        return None
    for node in ast.walk(method.node):
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Tuple)
            and len(node.value.elts) == 2
        ):
            return method.node
    return None


def _metadata_bytes(model: ModuleModel, program: ClassModel) -> Optional[int]:
    metadata = model.metadata_for(program)
    if metadata is None:
        return None
    fmt, _fields = model.metadata_layout(metadata)
    if fmt is None:
        return None
    try:
        return struct.calcsize(fmt)
    except struct.error:
        return None


def analyze_program(model: ModuleModel, program: ClassModel) -> ProgramFacts:
    """Classify one program class's state accesses."""
    transition = _concrete_transition(model, program)
    multi_key = False
    fields: Tuple[FieldFacts, ...]
    any_old_read = False

    if transition is not None:
        clf = _TransitionClassifier(model, transition)
        clf.run()
        any_old_read = clf.any_old_read
        facts = []
        for name in sorted(clf.writes):
            kinds = clf.writes[name]
            facts.append(
                FieldFacts(
                    field=name,
                    kinds=tuple(sorted(kinds)),
                    reads_old=any_old_read or name in clf.reads_old_fields,
                )
            )
        # A program that only ever "writes" None without reading the old
        # value keeps no state at all (the forwarder's `return None, TX`).
        if (
            len(facts) == 1
            and facts[0].kinds == ("delete",)
            and not any_old_read
        ):
            facts = []
        fields = tuple(facts)
    elif "apply" in program.methods:
        # transition is not implemented (NAT): the program updates several
        # entries per packet through apply(); never commutative.
        multi_key = True
        fields = (FieldFacts(field="value", kinds=("rmw",), reads_old=True),)
    else:
        fields = ()

    key_fields = tuple(sorted(_meta_fields_read(model, program, "key")))
    has_global = _class_bool(program, "has_global_state")
    if not fields:
        locality = "stateless"
    elif multi_key or has_global:
        locality = "multi_key" if multi_key else "global"
    elif set(key_fields) >= _FLOW_FIELDS:
        locality = "flow_local"
    elif key_fields:
        locality = "cross_flow"
    else:
        locality = "global"

    return ProgramFacts(
        class_name=program.name,
        program_name=_class_str(program, "name"),
        path=model.path,
        line=program.node.lineno,
        key_locality=locality,
        key_fields=key_fields,
        metadata_bytes=_metadata_bytes(model, program),
        bidirectional=_class_bool(program, "bidirectional"),
        has_global_state=has_global,
        needs_locks=(
            _class_bool(program, "needs_locks")
            or "needs_locks" not in program.assigns
        ),
        multi_key=multi_key,
        fields=fields,
        declared_commutative=_declared_commutative(program),
    )


def analyze_module(model: ModuleModel) -> List[ProgramFacts]:
    """Facts for every program class in a module, in definition order."""
    return [
        analyze_program(model, cls)
        for cls in model.program_classes()
        if cls.name != "PacketProgram"  # the abstract root has no dataflow
    ]


def analyze_source(source: str, path: str = "<source>") -> List[ProgramFacts]:
    return analyze_module(ModuleModel.from_source(path, source))


def analyze_path(path: str) -> List[ProgramFacts]:
    with open(path, "r", encoding="utf-8") as fh:
        return analyze_source(fh.read(), path)


def facts_report(paths: Sequence[str]) -> Dict[str, object]:
    """The ``scr-repro/state-facts/v1`` document for a set of files."""
    programs: List[Dict[str, object]] = []
    for path in paths:
        programs.extend(f.to_dict() for f in analyze_path(path))
    return {
        "schema": FACTS_SCHEMA,
        "paths": list(paths),
        "programs": programs,
    }
