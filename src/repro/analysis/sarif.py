"""SARIF 2.1.0 rendering of scrlint reports.

SARIF (Static Analysis Results Interchange Format) is the lingua franca
of code-scanning UIs: GitHub's security tab, VS Code's SARIF viewer, and
most CI annotators ingest it directly.  Emitting it makes scrlint
findings show up as inline review annotations instead of a log to read —
``scr-repro lint --format sarif`` in CI, uploaded via ``upload-sarif``.

The mapping is deliberately small and lossless:

* each registered rule becomes a ``reportingDescriptor`` (id, title as
  ``shortDescription``, the paper reference in ``help``);
* each :class:`~repro.analysis.findings.Finding` becomes a ``result``
  with ``ruleId``, the message, one physical location (SARIF columns are
  1-based; scrlint's are 0-based), and the finding's ``symbol``/``detail``
  in ``properties``;
* run-level totals (files checked, suppressed count) ride in the run's
  ``properties`` so nothing the JSON report carries is dropped.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .findings import Finding
from .rules import Rule, all_rules
from .runner import LintReport

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "report_to_sarif", "format_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: scrlint findings are admission-gate violations, not style nits.
_LEVEL = "error"


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "help": {"text": f"Paper reference: {rule.paper_ref}"},
        "defaultConfiguration": {"level": _LEVEL},
    }


def _result(finding: Finding) -> Dict[str, object]:
    properties: Dict[str, object] = {}
    if finding.symbol:
        properties["symbol"] = finding.symbol
    if finding.detail:
        properties["detail"] = dict(finding.detail)
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVEL,
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": max(finding.line, 1),
                    # SARIF columns are 1-based; scrlint's are 0-based.
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
    if properties:
        result["properties"] = properties
    return result


def report_to_sarif(
    report: LintReport, rules: Optional[Sequence[Rule]] = None
) -> Dict[str, object]:
    """One SARIF log (a single scrlint run) as a JSON-safe dict."""
    descriptors: List[Dict[str, object]] = [
        _rule_descriptor(rule) for rule in (rules if rules is not None
                                            else all_rules())
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "scrlint",
                    "informationUri": "docs/ANALYSIS.md",
                    "rules": descriptors,
                },
            },
            "results": [_result(f) for f in sorted(report.findings)],
            "properties": {
                "filesChecked": report.files_checked,
                "suppressed": report.suppressed,
            },
        }],
    }


def format_sarif(
    report: LintReport, rules: Optional[Sequence[Rule]] = None
) -> str:
    return json.dumps(report_to_sarif(report, rules), indent=2, sort_keys=True)
