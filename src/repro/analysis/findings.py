"""Finding records produced by the scrlint rules.

A :class:`Finding` pins one SCR-safety violation to a source location and a
rule id (``SCR001``–``SCR005``, or ``SCR000`` for files the analyzer cannot
parse).  Findings serialize to JSON so CI can archive and diff them; the
text rendering mirrors compiler diagnostics (``path:line:col: RULE message``)
so editors can jump to them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Sequence

__all__ = ["Finding", "findings_to_json", "render_finding"]

#: schema tag written into JSON reports so future format changes are
#: detectable by consumers (mirrors the bench-artifact versioning).
REPORT_SCHEMA = "scr-repro/lint-report/v1"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule) so reports are stable across runs
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    symbol: str
    message: str
    #: extra machine-readable context (e.g. the offending call's dotted name).
    detail: Dict[str, str] = field(default_factory=dict, compare=False)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def render_finding(finding: Finding) -> str:
    """``path:line:col: RULE [symbol] message`` — one line per finding."""
    where = f"{finding.path}:{finding.line}:{finding.col}"
    sym = f" [{finding.symbol}]" if finding.symbol else ""
    return f"{where}: {finding.rule}{sym} {finding.message}"


def findings_to_json(
    findings: Sequence[Finding],
    *,
    files_checked: int = 0,
    suppressed: int = 0,
) -> str:
    """The JSON report CI archives (sorted, schema-tagged)."""
    payload: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "files_checked": files_checked,
        "suppressed": suppressed,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
